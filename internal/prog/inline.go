package prog

import "fmt"

// Inline returns a copy of the program in which every call has been
// expanded into the caller, leaving a single entry function with no Call
// expressions. Ordered dataflow requires this: without tags, a shared
// callee cannot disambiguate interleaved activations from multiple call
// sites, so (as in real ordered CGRAs such as RipTide) the program is
// fully inlined before lowering.
//
// Inlined variables and loop labels are alpha-renamed with a unique suffix
// so scoping and label uniqueness are preserved.
func Inline(p *Program) (*Program, error) {
	order, err := CallOrder(p)
	if err != nil {
		return nil, err
	}
	in := &inliner{
		p:        p,
		expanded: make(map[string]*Func, len(p.Funcs)),
	}
	for _, name := range order { // callees before callers
		f := p.FindFunc(name)
		nf := &Func{Name: f.Name, Params: f.Params}
		nf.Body, nf.Ret = in.stmts(f.Body), nil
		if f.Ret != nil {
			pre, e := in.expr(f.Ret)
			nf.Body = append(nf.Body, pre...)
			nf.Ret = e
		}
		in.expanded[name] = nf
	}
	entry := in.expanded[p.Entry]
	if entry == nil {
		return nil, fmt.Errorf("prog: inline: missing entry %q", p.Entry)
	}
	out := &Program{
		Name:  p.Name + ".inlined",
		Funcs: []*Func{entry},
		Entry: p.Entry,
		Mems:  append([]MemDecl(nil), p.Mems...),
	}
	return out, nil
}

type inliner struct {
	p        *Program
	expanded map[string]*Func
	fresh    int
	renames  []map[string]string // active substitution scopes (innermost last)
}

func (in *inliner) rename(name string) string {
	r, _ := in.lookupRename(name)
	return r
}

func (in *inliner) lookupRename(name string) (string, bool) {
	for i := len(in.renames) - 1; i >= 0; i-- {
		if r, ok := in.renames[i][name]; ok {
			return r, true
		}
	}
	return name, false
}

func (in *inliner) freshName(base string) string {
	in.fresh++
	return fmt.Sprintf("%s$%d", base, in.fresh)
}

// stmts rewrites statements, hoisting call expansions in front of the
// statement that contained them.
func (in *inliner) stmts(stmts []Stmt) []Stmt {
	var out []Stmt
	for _, s := range stmts {
		out = append(out, in.stmt(s)...)
	}
	return out
}

func (in *inliner) stmt(s Stmt) []Stmt {
	switch st := s.(type) {
	case Let:
		pre, e := in.expr(st.E)
		return append(pre, Let{Name: in.declName(st.Name), E: e})
	case Assign:
		pre, e := in.expr(st.E)
		return append(pre, Assign{Name: in.rename(st.Name), E: e})
	case StoreStmt:
		pre, a := in.expr(st.Addr)
		pre2, v := in.expr(st.Val)
		return append(append(pre, pre2...), StoreStmt{Mem: st.Mem, Addr: a, Val: v, Class: st.Class})
	case If:
		pre, c := in.expr(st.Cond)
		in.pushScope()
		then := in.stmts(st.Then)
		in.popScope()
		in.pushScope()
		els := in.stmts(st.Else)
		in.popScope()
		return append(pre, If{Cond: c, Then: then, Else: els})
	case While:
		return in.while(st)
	case ExprStmt:
		pre, e := in.expr(st.E)
		return append(pre, ExprStmt{E: e})
	default:
		panic(fmt.Sprintf("prog: inline: unknown statement %T", s))
	}
}

// declName records a declaration in the innermost substitution scope. At
// the top level (no active inlining scopes), names pass through unchanged.
func (in *inliner) declName(name string) string {
	if len(in.renames) == 0 {
		return name
	}
	fresh := in.freshName(name)
	in.renames[len(in.renames)-1][name] = fresh
	return fresh
}

func (in *inliner) pushScope() {
	if len(in.renames) > 0 {
		in.renames = append(in.renames, map[string]string{})
	}
}

func (in *inliner) popScope() {
	if len(in.renames) > 0 {
		in.renames = in.renames[:len(in.renames)-1]
	}
}

func (in *inliner) while(w While) []Stmt {
	var pre []Stmt
	nw := While{Label: w.Label}
	if len(in.renames) > 0 && nw.Label != "" {
		nw.Label = in.freshName(nw.Label)
	}
	// Inits are evaluated in the enclosing scope.
	inits := make([]Expr, len(w.Vars))
	for i, v := range w.Vars {
		p, e := in.expr(v.Init)
		pre = append(pre, p...)
		inits[i] = e
	}
	// Carried variables either rebind an existing binding (merge-out) —
	// reuse its rename so the rebinding survives the loop — or declare a
	// fresh name that must stay visible after the loop, so register it in
	// the enclosing scope, before the loop-body scope opens.
	for i, v := range w.Vars {
		name, bound := in.lookupRename(v.Name)
		if !bound {
			name = in.declName(v.Name)
		}
		nw.Vars = append(nw.Vars, LoopVar{Name: name, Init: inits[i]})
	}
	in.pushScope()
	// A call in the loop condition would have to be re-evaluated every
	// iteration and cannot be hoisted before the loop. No workload needs
	// it, so reject it explicitly rather than risk silently wrong code:
	// bind the call result to a carried variable instead.
	condPre, cond := in.expr(w.Cond)
	if len(condPre) > 0 {
		panic(fmt.Sprintf("prog: inline: calls in loop conditions are not supported (loop %q); bind the call result to a carried variable instead", w.Label))
	}
	nw.Cond = cond
	nw.Body = in.stmts(w.Body)
	in.popScope()
	return append(pre, nw)
}

func (in *inliner) expr(e Expr) ([]Stmt, Expr) {
	switch ex := e.(type) {
	case Const:
		return nil, ex
	case Var:
		return nil, Var{Name: in.rename(ex.Name)}
	case Bin:
		p1, a := in.expr(ex.A)
		p2, b := in.expr(ex.B)
		return append(p1, p2...), Bin{Op: ex.Op, A: a, B: b}
	case Select:
		p1, c := in.expr(ex.Cond)
		p2, t := in.expr(ex.Then)
		p3, f := in.expr(ex.Else)
		return append(append(p1, p2...), p3...), Select{Cond: c, Then: t, Else: f}
	case Load:
		p, a := in.expr(ex.Addr)
		return p, Load{Mem: ex.Mem, Addr: a, Class: ex.Class}
	case Call:
		return in.call(ex)
	default:
		panic(fmt.Sprintf("prog: inline: unknown expression %T", e))
	}
}

// call expands a call to an already-inlined callee into hoisted statements
// plus a variable holding the result.
func (in *inliner) call(c Call) ([]Stmt, Expr) {
	callee := in.expanded[c.Fn]
	if callee == nil {
		panic(fmt.Sprintf("prog: inline: callee %q not yet expanded (call order bug)", c.Fn))
	}
	var pre []Stmt
	args := make([]Expr, len(c.Args))
	for i, a := range c.Args {
		p, e := in.expr(a)
		pre = append(pre, p...)
		args[i] = e
	}
	// Bind params in a fresh substitution scope, then splice the body.
	in.renames = append(in.renames, map[string]string{})
	for i, p := range callee.Params {
		fresh := in.freshName(p)
		in.renames[len(in.renames)-1][p] = fresh
		pre = append(pre, Let{Name: fresh, E: args[i]})
	}
	pre = append(pre, in.stmts(callee.Body)...)
	var result Expr = Const{V: 0}
	if callee.Ret != nil {
		var rp []Stmt
		rp, result = in.expr(callee.Ret)
		pre = append(pre, rp...)
	}
	// Materialize the result so the substitution scope can be popped.
	res := in.freshName("ret")
	pre = append(pre, Let{Name: res, E: result})
	in.renames = in.renames[:len(in.renames)-1]
	return pre, Var{Name: res}
}
