package prog

import "repro/internal/dfg"

// Builder helpers: thin constructors that make workload definitions read
// close to the paper's pseudocode. All return AST values; no validation
// happens until Check.

// C makes an integer literal.
func C(v int64) Expr { return Const{V: v} }

// V reads a variable.
func V(name string) Expr { return Var{Name: name} }

// B applies a binary operation.
func B(op dfg.BinKind, a, b Expr) Expr { return Bin{Op: op, A: a, B: b} }

// Convenience arithmetic and comparisons.
func Add(a, b Expr) Expr { return B(dfg.BinAdd, a, b) }
func Sub(a, b Expr) Expr { return B(dfg.BinSub, a, b) }
func Mul(a, b Expr) Expr { return B(dfg.BinMul, a, b) }
func Div(a, b Expr) Expr { return B(dfg.BinDiv, a, b) }
func Rem(a, b Expr) Expr { return B(dfg.BinRem, a, b) }
func And(a, b Expr) Expr { return B(dfg.BinAnd, a, b) }
func Or(a, b Expr) Expr  { return B(dfg.BinOr, a, b) }
func Xor(a, b Expr) Expr { return B(dfg.BinXor, a, b) }
func Shl(a, b Expr) Expr { return B(dfg.BinShl, a, b) }
func Shr(a, b Expr) Expr { return B(dfg.BinShr, a, b) }
func Lt(a, b Expr) Expr  { return B(dfg.BinLt, a, b) }
func Le(a, b Expr) Expr  { return B(dfg.BinLe, a, b) }
func Gt(a, b Expr) Expr  { return B(dfg.BinGt, a, b) }
func Ge(a, b Expr) Expr  { return B(dfg.BinGe, a, b) }
func Eq(a, b Expr) Expr  { return B(dfg.BinEq, a, b) }
func Ne(a, b Expr) Expr  { return B(dfg.BinNe, a, b) }
func Min(a, b Expr) Expr { return B(dfg.BinMin, a, b) }
func Max(a, b Expr) Expr { return B(dfg.BinMax, a, b) }

// Not yields 1 when e is zero, else 0.
func Not(e Expr) Expr { return Eq(e, C(0)) }

// Sel is the eager predicated select.
func Sel(cond, then, els Expr) Expr { return Select{Cond: cond, Then: then, Else: els} }

// Ld reads mem[addr] with no ordering constraints.
func Ld(mem string, addr Expr) Expr { return Load{Mem: mem, Addr: addr} }

// LdClass reads mem[addr] within an ordering class.
func LdClass(mem string, addr Expr, class string) Expr {
	return Load{Mem: mem, Addr: addr, Class: class}
}

// CallE builds a call expression.
func CallE(fn string, args ...Expr) Expr { return Call{Fn: fn, Args: args} }

// LetS introduces a variable.
func LetS(name string, e Expr) Stmt { return Let{Name: name, E: e} }

// Set rebinds a variable.
func Set(name string, e Expr) Stmt { return Assign{Name: name, E: e} }

// St writes mem[addr] = val with no ordering constraints.
func St(mem string, addr, val Expr) Stmt { return StoreStmt{Mem: mem, Addr: addr, Val: val} }

// StClass writes mem[addr] = val within an ordering class.
func StClass(mem string, addr, val Expr, class string) Stmt {
	return StoreStmt{Mem: mem, Addr: addr, Val: val, Class: class}
}

// IfS builds a two-armed branch.
func IfS(cond Expr, then []Stmt, els []Stmt) Stmt { return If{Cond: cond, Then: then, Else: els} }

// When builds a one-armed branch.
func When(cond Expr, then ...Stmt) Stmt { return If{Cond: cond, Then: then} }

// Do evaluates an expression for side effects.
func Do(e Expr) Stmt { return ExprStmt{E: e} }

// Loop builds a general while loop with explicit carried variables.
func Loop(label string, vars []LoopVar, cond Expr, body ...Stmt) Stmt {
	return While{Label: label, Vars: vars, Cond: cond, Body: body}
}

// LV declares one loop-carried variable.
func LV(name string, init Expr) LoopVar { return LoopVar{Name: name, Init: init} }

// ForRange builds the canonical counted loop
//
//	for (idx = start; idx < end; idx++) { body }
//
// with additional carried variables in extra. The index increment is
// appended after the body, so body statements observe the current index.
func ForRange(label, idx string, start, end Expr, extra []LoopVar, body ...Stmt) Stmt {
	vars := append([]LoopVar{LV(idx, start)}, extra...)
	b := append(append([]Stmt{}, body...), Set(idx, Add(V(idx), C(1))))
	return While{Label: label, Vars: vars, Cond: Lt(V(idx), end), Body: b}
}

// NewProgram allocates an empty program.
func NewProgram(name, entry string) *Program {
	return &Program{Name: name, Entry: entry}
}

// DeclareMem declares a region with a default size.
func (p *Program) DeclareMem(name string, size int) {
	p.Mems = append(p.Mems, MemDecl{Name: name, Size: size})
}

// AddFunc defines a function and returns it.
func (p *Program) AddFunc(name string, params []string, ret Expr, body ...Stmt) *Func {
	f := &Func{Name: name, Params: params, Body: body, Ret: ret}
	p.Funcs = append(p.Funcs, f)
	return f
}
