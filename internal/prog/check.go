package prog

import (
	"fmt"
	"sort"
)

// Check validates a program:
//
//   - the entry function exists,
//   - memory regions are declared once and every access names one,
//   - calls target existing functions with matching arity and the call
//     graph is acyclic (no recursion; see Sec. V of the paper),
//   - variables are declared before use, never redeclared in the same
//     scope, and writes never cross a loop boundary unless the variable is
//     loop-carried on that loop (the merge-out of a loop's carried
//     variables counts as a write at the loop's location),
//   - loop labels are unique so experiments can address blocks by name.
//
// Check must pass before Compile or Run; its error messages identify the
// offending construct.
func Check(p *Program) error {
	c := &checker{p: p}
	c.run()
	if len(c.errs) == 0 {
		return nil
	}
	return fmt.Errorf("prog: %s: %d error(s), first: %w", p.Name, len(c.errs), c.errs[0])
}

type scopeKind uint8

const (
	scopeBlock scopeKind = iota
	scopeLoop
	scopeFunc
)

type scope struct {
	kind  scopeKind
	names map[string]bool
}

type checker struct {
	p      *Program
	scopes []scope
	errs   []error
	fn     *Func
	labels map[string]bool
	mems   map[string]bool
}

func (c *checker) errorf(format string, args ...interface{}) {
	c.errs = append(c.errs, fmt.Errorf(format, args...))
}

func (c *checker) run() {
	c.mems = make(map[string]bool)
	for _, m := range c.p.Mems {
		if c.mems[m.Name] {
			c.errorf("memory region %q declared twice", m.Name)
		}
		if m.Size < 0 {
			c.errorf("memory region %q has negative size %d", m.Name, m.Size)
		}
		c.mems[m.Name] = true
	}

	seen := make(map[string]bool)
	for _, f := range c.p.Funcs {
		if seen[f.Name] {
			c.errorf("function %q defined twice", f.Name)
		}
		seen[f.Name] = true
	}
	if c.p.EntryFunc() == nil {
		c.errorf("entry function %q not defined", c.p.Entry)
	}
	if _, err := CallOrder(c.p); err != nil {
		c.errs = append(c.errs, err)
	}

	c.labels = make(map[string]bool)
	for _, f := range c.p.Funcs {
		c.checkFunc(f)
	}
}

func (c *checker) checkFunc(f *Func) {
	c.fn = f
	c.scopes = c.scopes[:0]
	c.push(scopeFunc)
	for _, p := range f.Params {
		c.declare(f, p)
	}
	c.checkStmts(f.Body)
	if f.Ret != nil {
		c.checkExpr(f.Ret)
	}
	c.pop()
}

func (c *checker) push(k scopeKind) {
	c.scopes = append(c.scopes, scope{kind: k, names: make(map[string]bool)})
}

func (c *checker) pop() { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(f *Func, name string) {
	top := &c.scopes[len(c.scopes)-1]
	if top.names[name] {
		c.errorf("func %q: variable %q redeclared in the same scope", f.Name, name)
	}
	top.names[name] = true
}

// canRead reports whether name is visible for reading (any enclosing scope
// within the current function).
func (c *checker) canRead(name string) bool {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if c.scopes[i].names[name] {
			return true
		}
	}
	return false
}

// canWrite reports whether name can be rebound from the current position:
// the binding must be reachable without crossing a loop boundary.
func (c *checker) canWrite(name string) (found, crossesLoop bool) {
	crossed := false
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if c.scopes[i].names[name] {
			return true, crossed
		}
		if c.scopes[i].kind == scopeLoop {
			crossed = true
		}
	}
	return false, false
}

func (c *checker) checkStmts(stmts []Stmt) {
	for _, s := range stmts {
		c.checkStmt(s)
	}
}

func (c *checker) checkStmt(s Stmt) {
	switch st := s.(type) {
	case Let:
		c.checkExpr(st.E)
		c.declare(c.fn, st.Name)
	case Assign:
		c.checkExpr(st.E)
		c.checkWrite(st.Name, "assignment")
	case StoreStmt:
		c.checkMem(st.Mem)
		c.checkExpr(st.Addr)
		c.checkExpr(st.Val)
	case If:
		c.checkExpr(st.Cond)
		c.push(scopeBlock)
		c.checkStmts(st.Then)
		c.pop()
		c.push(scopeBlock)
		c.checkStmts(st.Else)
		c.pop()
	case While:
		c.checkWhile(st)
	case ExprStmt:
		c.checkExpr(st.E)
	default:
		c.errorf("func %q: unknown statement %T", c.fn.Name, s)
	}
}

func (c *checker) checkWrite(name, what string) {
	found, crossesLoop := c.canWrite(name)
	if !found {
		if c.canRead(name) {
			c.errorf("func %q: %s to %q crosses a loop boundary; declare it loop-carried on the enclosing loop", c.fn.Name, what, name)
		} else {
			c.errorf("func %q: %s to undeclared variable %q", c.fn.Name, what, name)
		}
		return
	}
	if crossesLoop {
		c.errorf("func %q: %s to %q crosses a loop boundary; declare it loop-carried on the enclosing loop", c.fn.Name, what, name)
	}
}

func (c *checker) checkWhile(w While) {
	if w.Label != "" {
		if c.labels[w.Label] {
			c.errorf("func %q: duplicate loop label %q", c.fn.Name, w.Label)
		}
		c.labels[w.Label] = true
	}
	vnames := make(map[string]bool, len(w.Vars))
	for _, v := range w.Vars {
		if vnames[v.Name] {
			c.errorf("func %q: loop %q declares carried variable %q twice", c.fn.Name, w.Label, v.Name)
		}
		vnames[v.Name] = true
		c.checkExpr(v.Init) // evaluated in enclosing scope
	}
	c.push(scopeLoop)
	for _, v := range w.Vars {
		c.scopes[len(c.scopes)-1].names[v.Name] = true
	}
	c.checkExpr(w.Cond)
	c.checkStmts(w.Body)
	c.pop()
	// Merge-out: each carried var is written back to an existing outer
	// binding, or declared fresh in the current scope.
	names := make([]string, 0, len(w.Vars))
	for _, v := range w.Vars {
		names = append(names, v.Name)
	}
	sort.Strings(names)
	for _, name := range names {
		found, crossesLoop := c.canWrite(name)
		switch {
		case found && crossesLoop:
			c.errorf("func %q: loop %q result %q crosses an enclosing loop boundary; carry it on that loop too", c.fn.Name, w.Label, name)
		case !found:
			if c.canRead(name) {
				c.errorf("func %q: loop %q result %q crosses an enclosing loop boundary; carry it on that loop too", c.fn.Name, w.Label, name)
			} else {
				c.scopes[len(c.scopes)-1].names[name] = true
			}
		}
	}
}

func (c *checker) checkMem(name string) {
	if !c.mems[name] {
		c.errorf("func %q: access to undeclared memory region %q", c.fn.Name, name)
	}
}

func (c *checker) checkExpr(e Expr) {
	switch ex := e.(type) {
	case Const:
	case Var:
		if !c.canRead(ex.Name) {
			c.errorf("func %q: read of undeclared variable %q", c.fn.Name, ex.Name)
		}
	case Bin:
		c.checkExpr(ex.A)
		c.checkExpr(ex.B)
	case Select:
		c.checkExpr(ex.Cond)
		c.checkExpr(ex.Then)
		c.checkExpr(ex.Else)
	case Load:
		c.checkMem(ex.Mem)
		c.checkExpr(ex.Addr)
	case Call:
		callee := c.p.FindFunc(ex.Fn)
		if callee == nil {
			c.errorf("func %q: call to undefined function %q", c.fn.Name, ex.Fn)
		} else if len(callee.Params) != len(ex.Args) {
			c.errorf("func %q: call to %q with %d args, want %d", c.fn.Name, ex.Fn, len(ex.Args), len(callee.Params))
		}
		for _, a := range ex.Args {
			c.checkExpr(a)
		}
	default:
		c.errorf("func %q: unknown expression %T", c.fn.Name, e)
	}
}

// CallOrder returns function names in callee-before-caller (topological)
// order, or an error if the call graph is cyclic or references undefined
// functions.
func CallOrder(p *Program) ([]string, error) {
	adj := make(map[string][]string, len(p.Funcs)) // caller -> callees
	for _, f := range p.Funcs {
		callees := make(map[string]bool)
		collectCalls(f.Body, f.Ret, callees)
		list := make([]string, 0, len(callees))
		//tyr:nondet-ok -- keys only collected here, sorted before use
		for name := range callees {
			list = append(list, name)
		}
		// Sort before validating so the reported undefined callee is
		// deterministic when several are missing.
		sort.Strings(list)
		for _, name := range list {
			if p.FindFunc(name) == nil {
				return nil, fmt.Errorf("prog: %s: func %q calls undefined %q", p.Name, f.Name, name)
			}
		}
		adj[f.Name] = list
	}

	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(p.Funcs))
	var order []string
	var visit func(string) error
	visit = func(name string) error {
		switch color[name] {
		case gray:
			return fmt.Errorf("prog: %s: recursive call cycle through %q (transform recursion to loops per Sec. V)", p.Name, name)
		case black:
			return nil
		}
		color[name] = gray
		for _, callee := range adj[name] {
			if err := visit(callee); err != nil {
				return err
			}
		}
		color[name] = black
		order = append(order, name)
		return nil
	}
	names := make([]string, 0, len(p.Funcs))
	for _, f := range p.Funcs {
		names = append(names, f.Name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := visit(name); err != nil {
			return nil, err
		}
	}
	return order, nil
}

func collectCalls(body []Stmt, ret Expr, out map[string]bool) {
	var walkExpr func(Expr)
	walkExpr = func(e Expr) {
		switch ex := e.(type) {
		case Bin:
			walkExpr(ex.A)
			walkExpr(ex.B)
		case Select:
			walkExpr(ex.Cond)
			walkExpr(ex.Then)
			walkExpr(ex.Else)
		case Load:
			walkExpr(ex.Addr)
		case Call:
			out[ex.Fn] = true
			for _, a := range ex.Args {
				walkExpr(a)
			}
		}
	}
	var walkStmts func([]Stmt)
	walkStmts = func(stmts []Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case Let:
				walkExpr(st.E)
			case Assign:
				walkExpr(st.E)
			case StoreStmt:
				walkExpr(st.Addr)
				walkExpr(st.Val)
			case If:
				walkExpr(st.Cond)
				walkStmts(st.Then)
				walkStmts(st.Else)
			case While:
				for _, v := range st.Vars {
					walkExpr(v.Init)
				}
				walkExpr(st.Cond)
				walkStmts(st.Body)
			case ExprStmt:
				walkExpr(st.E)
			}
		}
	}
	walkStmts(body)
	if ret != nil {
		walkExpr(ret)
	}
}
