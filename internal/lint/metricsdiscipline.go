package lint

import (
	"go/ast"
	"go/types"
)

// MetricsDiscipline keeps the tyrd service counters honest under 64-way
// concurrency: every field of server.Metrics is either an atomic (mutated
// through Add/Store/... only) or guarded by the struct's mutex (touched
// only inside the accessor file, metrics.go, where the locking lives).
//
// Outside the accessor file, the only legal mention of a Metrics field is
// an atomic field used as the immediate receiver of an atomic method call
// (m.stats.cacheHits.Add(1)). Everything else — assigning a field,
// reading the maps, locking the mutex from afar, copying the struct —
// is reported: the next person to "just bump a counter" from a handler
// gets a build break instead of a torn map under load.
var MetricsDiscipline = &Analyzer{
	Name: "metricsdiscipline",
	Doc:  "server.Metrics fields are mutated only via their atomic/locked accessors",
	Run:  runMetricsDiscipline,
}

// atomicMethods are the sync/atomic value methods that constitute a
// legal touch of an atomic counter field.
var atomicMethods = map[string]bool{
	"Add": true, "Load": true, "Store": true, "Swap": true,
	"CompareAndSwap": true, "And": true, "Or": true,
}

func runMetricsDiscipline(pass *Pass) {
	if !has(pass.Policy.MetricsPkgs, pass.Pkg.Path) {
		return
	}
	// The discipline applies to every struct in this package named
	// "Metrics" (there is exactly one today; a second would inherit the
	// same obligations automatically).
	metricsObj := pass.Pkg.Types.Scope().Lookup("Metrics")
	if metricsObj == nil {
		pass.Reportf(pass.Pkg.Files[0].Package,
			"package %s is listed in lint.Policy.MetricsPkgs but declares no Metrics type: update the policy", pass.Pkg.Path)
		return
	}
	for _, f := range pass.Pkg.Files {
		if has(pass.Policy.MetricsAccessorFiles, pass.Pkg.FileName(f.Package)) {
			continue // the accessor module owns the fields and the lock
		}
		checkMetricsFile(pass, f, metricsObj.Type())
	}
}

func checkMetricsFile(pass *Pass, f *ast.File, metricsType types.Type) {
	// ok marks selector expressions that are sanctioned: an atomic field
	// appearing as the receiver of an atomic method call.
	ok := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		method, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !isSel || !atomicMethods[method.Sel.Name] {
			return true
		}
		field, isField := ast.Unparen(method.X).(*ast.SelectorExpr)
		if !isField {
			return true
		}
		if !isMetricsField(pass.Pkg, field, metricsType) {
			return true
		}
		if isAtomicType(typeOf(pass.Pkg, field)) {
			ok[field] = true
		}
		return true
	})

	ast.Inspect(f, func(n ast.Node) bool {
		sel, isSel := n.(*ast.SelectorExpr)
		if !isSel || ok[sel] {
			return true
		}
		if !isMetricsField(pass.Pkg, sel, metricsType) {
			return true
		}
		if isAtomicType(typeOf(pass.Pkg, sel)) {
			pass.Reportf(sel.Pos(), "atomic Metrics field %s touched outside an atomic method call: use .Add/.Load/... directly on the field, or add an accessor in metrics.go", sel.Sel.Name)
		} else {
			pass.Reportf(sel.Pos(), "Metrics field %s is mutex-guarded state: it may only be touched inside the accessor file (metrics.go), where the locking discipline lives", sel.Sel.Name)
		}
		return true
	})
}

// isMetricsField reports whether sel selects a *field* of the Metrics
// struct (method calls like m.ObserveRun(...) are the sanctioned API and
// pass freely).
func isMetricsField(pkg *Package, sel *ast.SelectorExpr, metricsType types.Type) bool {
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	recv := deref(s.Recv())
	want := deref(metricsType)
	return types.Identical(recv, want)
}

// isAtomicType reports whether t is one of the sync/atomic value types.
func isAtomicType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}
