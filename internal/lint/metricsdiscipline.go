package lint

import (
	"go/ast"
	"go/types"
)

// MetricsDiscipline keeps the tyrd service counters honest under 64-way
// concurrency: every field of server.Metrics is either an atomic (mutated
// through Add/Store/... only) or guarded by the struct's mutex (touched
// only inside the accessor file, metrics.go, where the locking lives).
//
// Outside the accessor file, the only legal mention of a Metrics field is
// an atomic field used as the immediate receiver of an atomic method call
// (m.stats.cacheHits.Add(1)). Everything else — assigning a field,
// reading the maps, locking the mutex from afar, copying the struct —
// is reported: the next person to "just bump a counter" from a handler
// gets a build break instead of a torn map under load.
//
// The Histogram type (when the package declares one) is held to a
// stricter rule: its fields may not be mentioned outside the accessor
// file at all, atomic or not. Observe is its entire mutation API —
// bucket indexing arithmetic and the sum/bucket coupling live in one
// place, so a histogram can never be half-updated from a handler.
var MetricsDiscipline = &Analyzer{
	Name: "metricsdiscipline",
	Doc:  "server.Metrics and Histogram fields are mutated only via their atomic/locked accessors",
	Run:  runMetricsDiscipline,
}

// atomicMethods are the sync/atomic value methods that constitute a
// legal touch of an atomic counter field.
var atomicMethods = map[string]bool{
	"Add": true, "Load": true, "Store": true, "Swap": true,
	"CompareAndSwap": true, "And": true, "Or": true,
}

// guardedType is one struct type under field discipline. Strict types
// allow no field mention outside the accessor file at all; non-strict
// types sanction atomic fields used as immediate atomic-call receivers.
type guardedType struct {
	name   string
	typ    types.Type
	strict bool
}

func runMetricsDiscipline(pass *Pass) {
	if !has(pass.Policy.MetricsPkgs, pass.Pkg.Path) {
		return
	}
	// The discipline applies to the package's "Metrics" struct (required —
	// that is what put the package on the policy list) and, stricter, to
	// its "Histogram" struct when one is declared.
	metricsObj := pass.Pkg.Types.Scope().Lookup("Metrics")
	if metricsObj == nil {
		pass.Reportf(pass.Pkg.Files[0].Package,
			"package %s is listed in lint.Policy.MetricsPkgs but declares no Metrics type: update the policy", pass.Pkg.Path)
		return
	}
	guards := []guardedType{{name: "Metrics", typ: metricsObj.Type()}}
	if histObj := pass.Pkg.Types.Scope().Lookup("Histogram"); histObj != nil {
		guards = append(guards, guardedType{name: "Histogram", typ: histObj.Type(), strict: true})
	}
	for _, f := range pass.Pkg.Files {
		if has(pass.Policy.MetricsAccessorFiles, pass.Pkg.FileName(f.Package)) {
			continue // the accessor module owns the fields and the lock
		}
		for _, g := range guards {
			checkMetricsFile(pass, f, g)
		}
	}
}

func checkMetricsFile(pass *Pass, f *ast.File, guard guardedType) {
	// ok marks selector expressions that are sanctioned: an atomic field
	// appearing as the receiver of an atomic method call. Strict types
	// sanction nothing.
	ok := make(map[*ast.SelectorExpr]bool)
	if !guard.strict {
		ast.Inspect(f, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			method, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !isSel || !atomicMethods[method.Sel.Name] {
				return true
			}
			field, isField := ast.Unparen(method.X).(*ast.SelectorExpr)
			if !isField {
				return true
			}
			if !isMetricsField(pass.Pkg, field, guard.typ) {
				return true
			}
			if isAtomicType(typeOf(pass.Pkg, field)) {
				ok[field] = true
			}
			return true
		})
	}

	ast.Inspect(f, func(n ast.Node) bool {
		sel, isSel := n.(*ast.SelectorExpr)
		if !isSel || ok[sel] {
			return true
		}
		if !isMetricsField(pass.Pkg, sel, guard.typ) {
			return true
		}
		switch {
		case guard.strict:
			pass.Reportf(sel.Pos(), "%s field %s may only be touched inside the accessor file (metrics.go): Observe is the histogram's entire mutation API", guard.name, sel.Sel.Name)
		case isAtomicType(typeOf(pass.Pkg, sel)):
			pass.Reportf(sel.Pos(), "atomic %s field %s touched outside an atomic method call: use .Add/.Load/... directly on the field, or add an accessor in metrics.go", guard.name, sel.Sel.Name)
		default:
			pass.Reportf(sel.Pos(), "%s field %s is mutex-guarded state: it may only be touched inside the accessor file (metrics.go), where the locking discipline lives", guard.name, sel.Sel.Name)
		}
		return true
	})
}

// isMetricsField reports whether sel selects a *field* of the Metrics
// struct (method calls like m.ObserveRun(...) are the sanctioned API and
// pass freely).
func isMetricsField(pkg *Package, sel *ast.SelectorExpr, metricsType types.Type) bool {
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	recv := deref(s.Recv())
	want := deref(metricsType)
	return types.Identical(recv, want)
}

// isAtomicType reports whether t is one of the sync/atomic value types.
func isAtomicType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}
