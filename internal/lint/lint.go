// Package lint is the repo's custom static-analysis suite: a set of
// analyzers that prove, at the source level, the load-bearing invariants
// the fast paths and the serving layer stand on. Each analyzer is the
// static complement of a runtime guarantee that today is guarded only by
// comments and spot checks:
//
//   - graphimmut: no package outside the graph builders writes through a
//     *dfg.Graph — the assumption that lets the tyrd LRU share one
//     compiled graph across concurrent runs (internal/server/lru.go).
//   - hotpath: functions annotated //tyr:hotpath contain no
//     allocation-inducing constructs — the static complement of the
//     AllocsPerRun gates on the matching/dispatch hot path.
//   - cancelpoll: every engine cycle loop polls its cancel.Flag — the
//     504/drain guarantee of the tyrd service.
//   - determinism: no wall clock, no math/rand, no map-range iteration
//     inside the engine packages — what the golden-digest suite would
//     otherwise catch a release too late.
//   - metricsdiscipline: internal/server counters and gauges are mutated
//     only through their atomic or mutex-guarded accessors.
//
// The suite deliberately mirrors the golang.org/x/tools/go/analysis API
// shape (Analyzer, Pass, fixture tests with "// want" comments) but is
// implemented on the standard library alone (go/parser + go/types with
// the source importer), because this module carries zero dependencies and
// the build environment must not fetch any.
//
// Run it with cmd/tyrlint, `make lint`, or let internal/lint's self test
// enforce a clean repo on every `go test ./...`.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer describes one analysis pass and how to run it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppressions.
	Name string
	// Doc is a one-paragraph description of the invariant it proves.
	Doc string
	// Run applies the analyzer to one package, reporting through pass.
	Run func(pass *Pass)
}

// All returns the full suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		GraphImmut,
		HotPath,
		CancelPoll,
		Determinism,
		MetricsDiscipline,
	}
}

// Policy names the packages each invariant binds to. The default policy
// encodes this repo's layout; fixture tests substitute synthetic paths.
type Policy struct {
	// GraphPkg is the package defining the immutable graph types.
	GraphPkg string
	// GraphBuilders are the packages allowed to write through graph
	// types: they own freshly built graphs before publication. Once a
	// graph is returned from a builder it is shared (the tyrd LRU hands
	// one *dfg.Graph to any number of concurrent runs) and must never be
	// written again.
	GraphBuilders []string
	// EnginePkgs are the simulation engines: deterministic by contract
	// (golden digests), so no wall clock, no math/rand, no map-range
	// feeding results.
	EnginePkgs []string
	// CycleLoopPkgs must each contain at least one //tyr:cycleloop
	// function (an engine's main loop polling its cancel flag).
	CycleLoopPkgs []string
	// DelegatingEngines run their cycles through the reference
	// interpreter; every RunConfig composite literal they build must
	// arm the Stop field, or the 504/drain guarantee silently breaks.
	DelegatingEngines []string
	// RunConfigType is the fully qualified interpreter config type
	// ("pkgpath.TypeName") whose Stop field delegating engines must set.
	RunConfigType string
	// CancelPkg is the package defining the cooperative stop flag.
	CancelPkg string
	// MetricsPkgs are checked for metrics-field discipline.
	MetricsPkgs []string
	// MetricsAccessorFiles are the base filenames (per metrics package)
	// allowed to touch Metrics fields directly: the accessor module.
	MetricsAccessorFiles []string
}

// DefaultPolicy binds the suite to this repository's packages.
func DefaultPolicy() Policy {
	return Policy{
		GraphPkg: "repro/internal/dfg",
		GraphBuilders: []string{
			"repro/internal/dfg",      // owns the types and their builders
			"repro/internal/compile",  // lowers programs into fresh graphs
			"repro/internal/graphgen", // random-program/graph generator
			"repro/internal/graphio",  // decodes tyr-graph/v1 into fresh graphs
		},
		EnginePkgs: []string{
			"repro/internal/core",
			"repro/internal/ordered",
			"repro/internal/seqdf",
			"repro/internal/vn",
			"repro/internal/prog",
			"repro/internal/shard", // mailboxes/barriers feed the engine's determinism contract
		},
		CycleLoopPkgs: []string{
			"repro/internal/core",
			"repro/internal/ordered",
			"repro/internal/prog",
		},
		DelegatingEngines: []string{
			"repro/internal/vn",
			"repro/internal/seqdf",
		},
		RunConfigType:        "repro/internal/prog.RunConfig",
		CancelPkg:            "repro/internal/cancel",
		MetricsPkgs:          []string{"repro/internal/server"},
		MetricsAccessorFiles: []string{"metrics.go"},
	}
}

// has reports whether list contains s.
func has(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Policy   Policy
	Pkg      *Package

	diags *[]Diagnostic
	// suppress maps file -> set of lines carrying a //tyr:ignore for
	// this analyzer (the marker's own line; it silences that line and
	// the next).
	suppress map[string]map[int]bool
}

// Reportf records a diagnostic at pos unless a //tyr:ignore suppression
// covers its line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if lines, ok := p.suppress[position.Filename]; ok {
		if lines[position.Line] || lines[position.Line-1] {
			return
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreMarker is the line-level suppression: a comment of the form
//
//	//tyr:ignore <analyzer> -- <reason>
//
// on the offending line or the line above silences that analyzer there.
// The reason is mandatory: a suppression without a recorded justification
// is itself reported by every analyzer that parses it.
const ignoreMarker = "//tyr:ignore"

// buildSuppressions scans a package's comments for ignore markers aimed
// at this analyzer. Malformed markers (no analyzer name, or no reason
// after " -- ") are reported instead of honored.
func (p *Pass) buildSuppressions() {
	p.suppress = make(map[string]map[int]bool)
	for _, f := range p.Pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, ignoreMarker) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignoreMarker))
				name, reason, found := strings.Cut(rest, "--")
				name = strings.TrimSpace(name)
				reason = strings.TrimSpace(reason)
				if name == "" || !found || reason == "" {
					// Report malformed markers once, from the first
					// analyzer in the suite, to avoid 5x duplication.
					if p.Analyzer.Name == All()[0].Name {
						position := p.Pkg.Fset.Position(c.Pos())
						*p.diags = append(*p.diags, Diagnostic{
							Pos:      position,
							Analyzer: p.Analyzer.Name,
							Message:  "malformed //tyr:ignore: want \"//tyr:ignore <analyzer> -- <reason>\"",
						})
					}
					continue
				}
				if name != p.Analyzer.Name {
					continue
				}
				position := p.Pkg.Fset.Position(c.Pos())
				lines := p.suppress[position.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					p.suppress[position.Filename] = lines
				}
				lines[position.Line] = true
			}
		}
	}
}

// RunAnalyzers applies every analyzer to every package and returns the
// combined, sorted diagnostics.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer, policy Policy) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Policy: policy, Pkg: pkg, diags: &diags}
			pass.buildSuppressions()
			a.Run(pass)
		}
	}
	SortDiagnostics(diags)
	return diags
}

// funcAnnotated reports whether fn's doc comment carries the given
// //tyr:<marker> directive line.
func funcAnnotated(fn *ast.FuncDecl, marker string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == marker || strings.HasPrefix(text, marker+" ") {
			return true
		}
	}
	return false
}
