package lint

import "testing"

func TestGraphImmutFixture(t *testing.T) {
	runFixture(t, fixture{
		pkgs: map[string]string{
			"fix/dfg":     "graphimmut/dfg",
			"fix/builder": "graphimmut/builder",
			"fix/engine":  "graphimmut/engine",
		},
		analyzers: []*Analyzer{GraphImmut},
		policy: Policy{
			GraphPkg:      "fix/dfg",
			GraphBuilders: []string{"fix/dfg", "fix/builder"},
		},
	})
}

func TestHotPathFixture(t *testing.T) {
	runFixture(t, fixture{
		pkgs:      map[string]string{"fix/hot": "hotpath/hot"},
		analyzers: []*Analyzer{HotPath},
		policy:    Policy{},
	})
}

func TestCancelPollFixture(t *testing.T) {
	runFixture(t, fixture{
		pkgs: map[string]string{
			"fix/cancel": "cancelpoll/cancel",
			"fix/engine": "cancelpoll/engine",
			"fix/noloop": "cancelpoll/noloop",
			"fix/prog":   "cancelpoll/prog",
			"fix/deleg":  "cancelpoll/deleg",
		},
		analyzers: []*Analyzer{CancelPoll},
		policy: Policy{
			CycleLoopPkgs:     []string{"fix/engine", "fix/noloop"},
			DelegatingEngines: []string{"fix/deleg"},
			RunConfigType:     "fix/prog.RunConfig",
			CancelPkg:         "fix/cancel",
		},
	})
}

func TestDeterminismFixture(t *testing.T) {
	runFixture(t, fixture{
		pkgs:      map[string]string{"fix/engine": "determinism/engine"},
		analyzers: []*Analyzer{Determinism},
		policy:    Policy{EnginePkgs: []string{"fix/engine"}},
	})
}

func TestMetricsDisciplineFixture(t *testing.T) {
	runFixture(t, fixture{
		pkgs: map[string]string{
			"fix/metrics": "metricsdiscipline/metrics",
			"fix/empty":   "metricsdiscipline/empty",
		},
		analyzers: []*Analyzer{MetricsDiscipline},
		policy: Policy{
			MetricsPkgs:          []string{"fix/metrics", "fix/empty"},
			MetricsAccessorFiles: []string{"metrics.go"},
		},
	})
}
