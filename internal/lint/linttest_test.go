package lint

// Fixture-test harness in the spirit of x/tools' analysistest: each
// analyzer's fixtures live under testdata/src/<analyzer>/, organized as
// one or more packages that the runner loads at synthetic import paths
// (so a fixture Policy can bind them as "the graph package", "an engine
// package", and so on). Expected diagnostics are written in the fixture
// source as trailing comments:
//
//	g.Nodes[0].Label = "x" // want `mutates .* shared graph state`
//
// Every diagnostic must be matched by a want on its line, and every want
// must match a diagnostic — seeded bugs that the analyzer misses fail
// the test just as loudly as false positives.

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixture describes one analyzer fixture run.
type fixture struct {
	// pkgs maps synthetic import paths to directories relative to
	// testdata/src. All listed packages are loaded and analyzed.
	pkgs map[string]string
	// analyzers to run (usually just the one under test).
	analyzers []*Analyzer
	// policy binding the synthetic paths.
	policy Policy
}

// wantRe extracts the backtick-quoted patterns of a want comment.
var wantRe = regexp.MustCompile("`([^`]*)`")

// runFixture loads the fixture packages, runs the analyzers, and matches
// diagnostics against // want comments.
func runFixture(t *testing.T, fx fixture) {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	root, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	loader.Extra = make(map[string]string, len(fx.pkgs))
	for path, dir := range fx.pkgs {
		loader.Extra[path] = filepath.Join(root, filepath.FromSlash(dir))
	}

	var pkgs []*Package
	for path := range loader.Extra {
		p, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		pkgs = append(pkgs, p)
	}

	diags := RunAnalyzers(pkgs, fx.analyzers, fx.policy)

	// Collect want patterns per (file, line).
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "// want ")
					if idx < 0 {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					pats := wantRe.FindAllStringSubmatch(c.Text[idx:], -1)
					if len(pats) == 0 {
						t.Errorf("%s:%d: want comment with no backtick-quoted pattern", pos.Filename, pos.Line)
						continue
					}
					k := key{pos.Filename, pos.Line}
					for _, m := range pats {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
						}
						wants[k] = append(wants[k], re)
					}
				}
			}
		}
	}

	// Match diagnostics against wants.
	matched := make(map[key][]bool)
	for k, res := range wants {
		matched[k] = make([]bool, len(res))
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		res, ok := wants[k]
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		hit := false
		for i, re := range res {
			if re.MatchString(d.Message) {
				matched[k][i] = true
				hit = true
			}
		}
		if !hit {
			t.Errorf("diagnostic does not match any want pattern on its line: %s", d)
		}
	}
	for k, res := range wants {
		for i, re := range res {
			if !matched[k][i] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
			}
		}
	}
}
