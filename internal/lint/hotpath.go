package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPath is the static complement of the AllocsPerRun gates: functions
// annotated //tyr:hotpath (the engine step loops, the token store and
// tagMap ops, the calendar queue) must contain no allocation-inducing
// construct. PR 4 made the matching/dispatch path allocation-free in
// steady state; this analyzer keeps it that way at review time instead of
// bench time.
//
// Flagged inside annotated functions: make and new, map/slice composite
// literals (struct literals are stack values and stay legal), &composite
// literals, func literals (closure captures), go and defer statements,
// string concatenation and string<->[]byte/[]rune conversions, calls into
// fmt/strings/strconv/log/log/slog/errors, and boxing a non-pointer
// value into an interface parameter.
//
// Two escapes are deliberate: constructs lexically inside a return
// statement or a panic call are error/abort paths (the run is over — the
// steady-state claim no longer applies), and amortized growth lives in
// unannotated helpers (waitStore.grow, cq.Queue.grow) that the annotated
// ops may call — the dynamic AllocsPerRun gates bound how often those
// fire.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "//tyr:hotpath functions contain no allocation-inducing constructs outside abort paths",
	Run:  runHotPath,
}

// hotpathMarker annotates a function as steady-state allocation-free.
const hotpathMarker = "//tyr:hotpath"

// allocFreeCallPkgs are stdlib packages whose calls imply formatting or
// error construction — never steady-state work.
var hotpathBannedPkgs = map[string]string{
	"fmt":      "formats and boxes arguments",
	"strings":  "builds fresh strings",
	"strconv":  "builds fresh strings",
	"errors":   "constructs errors",
	"log":      "formats and locks",
	"log/slog": "formats and boxes arguments",
	"sort":     "takes closure comparators", // sort.Slice allocates the closure + boxes the slice
}

func runHotPath(pass *Pass) {
	forEachFunc(pass.Pkg, func(_ *ast.File, fn *ast.FuncDecl) {
		if !funcAnnotated(fn, hotpathMarker) || fn.Body == nil {
			return
		}
		checkHotBody(pass, fn)
	})
}

func checkHotBody(pass *Pass, fn *ast.FuncDecl) {
	// exempt collects the position intervals of abort paths: return
	// statements and panic calls. Anything inside them may allocate —
	// the run is ending.
	type span struct{ lo, hi token.Pos }
	var exempt []span
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ReturnStmt:
			exempt = append(exempt, span{x.Pos(), x.End()})
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					exempt = append(exempt, span{x.Pos(), x.End()})
				}
			}
		}
		return true
	})
	exempted := func(pos token.Pos) bool {
		for _, s := range exempt {
			if s.lo <= pos && pos < s.hi {
				return true
			}
		}
		return false
	}
	report := func(pos token.Pos, format string, args ...any) {
		if exempted(pos) {
			return
		}
		pass.Reportf(pos, format, args...)
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			report(x.Pos(), "closure in //tyr:hotpath function %s (captures allocate)", fn.Name.Name)
			return false // don't descend: the closure body is not the hot path itself
		case *ast.GoStmt:
			report(x.Pos(), "goroutine launch in //tyr:hotpath function %s", fn.Name.Name)
		case *ast.DeferStmt:
			report(x.Pos(), "defer in //tyr:hotpath function %s", fn.Name.Name)
		case *ast.CompositeLit:
			t := typeOf(pass.Pkg, x)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					report(x.Pos(), "%s literal allocates in //tyr:hotpath function %s", describeType(t), fn.Name.Name)
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					report(x.Pos(), "&composite literal in //tyr:hotpath function %s may escape to the heap", fn.Name.Name)
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if t := typeOf(pass.Pkg, x); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(x.Pos(), "string concatenation in //tyr:hotpath function %s", fn.Name.Name)
					}
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, fn, x, report)
		}
		return true
	})
}

func checkHotCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	// Builtins that always allocate.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				report(call.Pos(), "%s in //tyr:hotpath function %s", id.Name, fn.Name.Name)
			case "append":
				// Amortized append into a retained buffer is the design
				// (double-buffered outboxes, freelists); only appending
				// to a slice born in this very expression is a
				// guaranteed allocation.
				if len(call.Args) > 0 {
					switch ast.Unparen(call.Args[0]).(type) {
					case *ast.CompositeLit, *ast.CallExpr:
						report(call.Pos(), "append to a fresh slice in //tyr:hotpath function %s always allocates", fn.Name.Name)
					}
				}
			}
			return
		}
	}

	// Type conversions: string <-> []byte/[]rune copy.
	if tv, ok := pass.Pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := typeOf(pass.Pkg, call.Args[0])
		if src != nil {
			if isStringish(dst) != isStringish(src) && (isStringish(dst) || isStringish(src)) && (isByteOrRuneSlice(dst) || isByteOrRuneSlice(src)) {
				report(call.Pos(), "string/[]byte conversion copies in //tyr:hotpath function %s", fn.Name.Name)
			}
			if _, isIface := dst.Underlying().(*types.Interface); isIface {
				if boxes(pass.Pkg, call.Args[0]) {
					report(call.Pos(), "conversion to interface boxes a value in //tyr:hotpath function %s", fn.Name.Name)
				}
			}
		}
		return
	}

	// Calls into formatting/error-building stdlib packages.
	if pkgPath, name := calleePkgFunc(pass.Pkg, call); pkgPath != "" {
		if why, banned := hotpathBannedPkgs[pkgPath]; banned {
			report(call.Pos(), "%s.%s in //tyr:hotpath function %s (%s)", pkgPath, name, fn.Name.Name, why)
			return
		}
	}

	// Interface boxing at call boundaries: passing a concrete non-pointer
	// value where an interface parameter is declared heap-allocates the
	// value (pointers and constants ride in the interface word or the
	// runtime's small-value caches).
	sig, ok := typeOf(pass.Pkg, call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		if boxes(pass.Pkg, arg) {
			report(arg.Pos(), "argument boxes a concrete value into interface parameter in //tyr:hotpath function %s", fn.Name.Name)
		}
	}
}

// boxes reports whether passing arg to an interface parameter forces a
// heap allocation: a concrete, non-pointer, non-constant, non-interface
// value.
func boxes(pkg *Package, arg ast.Expr) bool {
	tv, ok := pkg.Info.Types[arg]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.Value != nil || tv.IsNil() {
		return false // constants and nil
	}
	t := tv.Type
	switch t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Signature, *types.Chan, *types.Map:
		return false // single-word kinds: no copy-to-heap
	}
	return true
}

func isStringish(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func describeType(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return t.String()
}
