package lint

import (
	"go/ast"
	"go/types"
)

// deref strips one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedStructFrom reports whether t (possibly behind a pointer) is a named
// struct type declared in the package with the given import path.
func namedStructFrom(t types.Type, pkgPath string) bool {
	if t == nil {
		return false
	}
	n, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return false
	}
	_, isStruct := n.Underlying().(*types.Struct)
	return isStruct
}

// namedIs reports whether t (possibly behind a pointer) is the named type
// "pkgpath.Name" given as a fully qualified string.
func namedIs(t types.Type, qualified string) bool {
	if t == nil {
		return false
	}
	n, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path()+"."+obj.Name() == qualified
}

// typeOf returns the type of e in pkg, or nil.
func typeOf(pkg *Package, e ast.Expr) types.Type {
	if tv, ok := pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isPointer reports whether t is a pointer type.
func isPointer(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

// pkgOfCall returns the import path of the package a call's callee belongs
// to ("" for builtins, locals, and method values on local types), plus the
// callee's name. It resolves pkgname.Func selectors and plain identifiers.
func calleePkgFunc(pkg *Package, call *ast.CallExpr) (pkgPath, name string) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[fun]; ok && obj.Pkg() != nil {
			return obj.Pkg().Path(), obj.Name()
		}
		return "", fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok {
				return pn.Imported().Path(), fun.Sel.Name
			}
		}
		if sel, ok := pkg.Info.Selections[fun]; ok && sel.Obj() != nil && sel.Obj().Pkg() != nil {
			return sel.Obj().Pkg().Path(), sel.Obj().Name()
		}
	}
	return "", ""
}

// forEachFunc visits every function declaration in the package.
func forEachFunc(pkg *Package, fn func(file *ast.File, decl *ast.FuncDecl)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				fn(f, fd)
			}
		}
	}
}
