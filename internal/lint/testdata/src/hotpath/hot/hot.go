// Package hot is the hotpath fixture: annotated functions with seeded
// allocation sites (each must be reported), annotated functions that are
// genuinely allocation-free (must stay silent), and unannotated
// functions the analyzer must ignore entirely.
package hot

import "fmt"

type buf struct {
	vals []int64
	out  []int64
}

// step is annotated and clean: amortized append into a retained buffer,
// arithmetic, struct values.
//
//tyr:hotpath
func (b *buf) step(v int64) {
	b.vals = append(b.vals, v+1)
}

//tyr:hotpath
func (b *buf) bad(n int) {
	b.vals = make([]int64, n)    // want `make in //tyr:hotpath function bad`
	b.out = append([]int64{}, 1) // want `append to a fresh slice` `slice literal allocates`
	m := map[int]int{}           // want `map literal allocates`
	p := new(buf)                // want `new in //tyr:hotpath function bad`
	f := func() {}               // want `closure in //tyr:hotpath function bad`
	q := &buf{}                  // want `&composite literal in //tyr:hotpath function bad`
	go b.step(1)                 // want `goroutine launch in //tyr:hotpath function bad`
	defer b.step(2)              // want `defer in //tyr:hotpath function bad`
	_, _, _, _ = m, p, f, q
}

//tyr:hotpath
func concat(a, b string) int {
	s := a + b // want `string concatenation in //tyr:hotpath function concat`
	return len(s)
}

//tyr:hotpath
func conv(s string) int {
	bs := []byte(s) // want `string/\[\]byte conversion copies`
	return len(bs)
}

func sink(v interface{}) int {
	if v == nil {
		return 0
	}
	return 1
}

//tyr:hotpath
func boxed(v int64, p *buf) {
	sink(v)             // want `argument boxes a concrete value into interface parameter`
	sink(p)             // pointers ride in the interface word: silent
	sink(nil)           // nil is silent
	sink(42)            // constants are silent
	_ = interface{}(v)  // want `conversion to interface boxes a value`
	fmt.Println("x", 1) // want `fmt\.Println in //tyr:hotpath function boxed`
}

// Abort paths are exempt: constructs inside a return statement or a
// panic call may allocate — the run is over.
//
//tyr:hotpath
func abort(err error, code int) error {
	if err != nil {
		return fmt.Errorf("wrapped: %w", err)
	}
	if code != 0 {
		panic(fmt.Sprintf("code %d", code))
	}
	return nil
}

// alloc is unannotated: the analyzer must not look inside.
func alloc(n int) []int64 {
	return make([]int64, n)
}
