package hot

// The inter-shard mailbox shape: push into a fixed ring with overflow
// spilling into a retained slice, drain via cursors. The real thing is
// internal/shard.Ring; this fixture pins what the analyzer must accept
// (amortized appends into retained backing, index arithmetic) and what
// it must reject (per-push allocation).

type mailbox struct {
	buf        []int64
	head, tail uint64
	spill      []int64
	spillHead  int
}

// push is the clean mailbox hot path: ring store or amortized spill
// append, no allocation once the spill has warmed up.
//
//tyr:hotpath
func (m *mailbox) push(v int64) {
	if len(m.spill) > 0 || m.tail-m.head >= uint64(len(m.buf)) {
		m.spill = append(m.spill, v)
		return
	}
	m.buf[m.tail&uint64(len(m.buf)-1)] = v
	m.tail++
}

// drain is the clean consumer side: cursor walks, no allocation.
//
//tyr:hotpath
func (m *mailbox) drain(sink *[]int64) {
	for m.head != m.tail {
		*sink = append(*sink, m.buf[m.head&uint64(len(m.buf)-1)])
		m.head++
	}
	for m.spillHead < len(m.spill) {
		*sink = append(*sink, m.spill[m.spillHead])
		m.spillHead++
	}
	m.spill = m.spill[:0]
	m.spillHead = 0
}

// pushBoxed is the seeded bad case: staging every overflow value in a
// fresh slice allocates per push — exactly what the mailbox contract
// (allocation-free steady state) forbids.
//
//tyr:hotpath
func (m *mailbox) pushBoxed(v int64) {
	if m.tail-m.head >= uint64(len(m.buf)) {
		box := []int64{v} // want `slice literal allocates`
		m.spill = append(m.spill, box...)
		return
	}
	m.buf[m.tail&uint64(len(m.buf)-1)] = v
	m.tail++
}
