// Package dfg is the graphimmut fixture's stand-in for the real graph
// package: named struct types reached through pointers and shared after
// publication.
package dfg

type NodeID int32

type Node struct {
	Label string
	Outs  []NodeID
}

type Meta struct {
	Name string
}

type Graph struct {
	Nodes  []Node
	Counts map[string]int
	Meta   *Meta
}

// New builds a fresh graph; the graph package writes freely to its own
// unpublished graphs.
func New() *Graph {
	g := &Graph{Counts: map[string]int{}, Meta: &Meta{}}
	g.Nodes = append(g.Nodes, Node{Label: "root"})
	return g
}
