// Package builder is on the Policy.GraphBuilders allowlist: it owns its
// graphs before publication, so none of these writes may be reported.
package builder

import "fix/dfg"

func Build() *dfg.Graph {
	g := dfg.New()
	g.Nodes[0].Label = "renamed"
	g.Counts["nodes"]++
	g.Meta = &dfg.Meta{Name: "built"}
	return g
}
