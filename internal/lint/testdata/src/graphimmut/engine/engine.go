// Package engine is NOT a graph builder: every write through a pointer
// into dfg-owned state must be reported, and every value-copy write must
// stay silent.
package engine

import "fix/dfg"

func Mutate(g *dfg.Graph, extra []dfg.Node) {
	g.Nodes[0].Label = "boom" // want `assignment mutates Graph\.Nodes through a pointer to shared graph state`
	n := &g.Nodes[0]
	n.Label = "boom"     // want `assignment mutates Node\.Label through a pointer to shared graph state`
	*n = dfg.Node{}      // want `assignment mutates fix/dfg state shared via \*dfg\.Graph`
	g.Counts["a"]++      // want `\+\+ mutates Graph\.Counts through a pointer to shared graph state`
	copy(g.Nodes, extra) // want `copy into mutates Graph\.Nodes through a pointer to shared graph state`
	g.Meta.Name = "m"    // want `assignment mutates Meta\.Name through a pointer to shared graph state`
}

// Legal writes: value copies cannot alias the shared graph.
func Legal(g *dfg.Graph) int {
	n := g.Nodes[0]
	n.Label = "local copy"
	local := dfg.Node{Label: "a"}
	local.Label = "b"
	return len(g.Nodes) + len(n.Label) + len(local.Label)
}

// Waived writes: a //tyr:ignore with a recorded reason is honored.
func Waived(g *dfg.Graph) {
	//tyr:ignore graphimmut -- fixture: prove suppressions are honored
	g.Meta.Name = "w"
}

// Malformed suppressions (no reason) are reported, not honored.
func Malformed(g *dfg.Graph) {
	//tyr:ignore graphimmut // want `malformed //tyr:ignore`
	g.Meta.Name = "m" // want `assignment mutates Meta\.Name through a pointer to shared graph state`
}
