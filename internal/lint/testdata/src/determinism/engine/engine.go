// Package engine is the determinism fixture: an "engine package" with
// seeded wall-clock reads, an ambient-randomness import, and map-range
// iterations both waived and unwaived.
package engine

import (
	"math/rand" // want `imports math/rand`
	"time"
)

func clock() int64 {
	return time.Now().Unix() // want `time\.Now in engine package`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since in engine package`
}

// roll uses the banned import; only the import line itself is flagged.
func roll() int { return rand.Intn(6) }

func sum(m map[string]int64) int64 {
	var s int64
	for _, v := range m { // want `map range in engine package`
		s += v
	}
	return s
}

// sumWaived carries an order-insensitivity waiver with a reason.
func sumWaived(m map[string]int64) int64 {
	var s int64
	//tyr:nondet-ok -- commutative sum over values
	for _, v := range m {
		s += v
	}
	return s
}

// badWaiver has no reason: the waiver is reported and not honored.
func badWaiver(m map[string]int64) int {
	n := 0
	//tyr:nondet-ok // want `requires a reason`
	for range m { // want `map range in engine package`
		n++
	}
	return n
}

// ordered iteration over a slice is silent.
func ok(xs []int64) int64 {
	var s int64
	for _, v := range xs {
		s += v
	}
	return s
}
