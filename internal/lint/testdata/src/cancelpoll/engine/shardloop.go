package engine

import "fix/cancel"

// The sharded-engine shape: the coordinator releases phases and each
// worker runs a gated loop. Both are //tyr:cycleloop obligations — a
// stopped run must park within one phase, so every worker polls the
// flag each time its gate opens.

type gate struct{ ch chan uint32 }

func (g *gate) wait() uint32 { return <-g.ch }

// worker is the good sharded case: a declared method (not a closure —
// closures are excluded from the poll by design), polling the flag
// inside its gated loop before doing phase work.
//
//tyr:cycleloop
func worker(g *gate, stop *cancel.Flag, work func(uint32)) {
	for {
		phase := g.wait()
		if phase == ^uint32(0) {
			return
		}
		if !stop.Stopped() {
			work(phase)
		}
	}
}

// freeRunner is the bad sharded case: the gate sequences it, but once
// released it never consults the flag — a stopped run spins on.
//
//tyr:cycleloop
func freeRunner(g *gate, stop *cancel.Flag, work func(uint32)) { // want `never calls Stopped\(\)`
	for {
		phase := g.wait()
		if phase == ^uint32(0) {
			return
		}
		work(phase)
	}
}
