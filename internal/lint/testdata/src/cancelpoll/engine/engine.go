// Package engine carries the //tyr:cycleloop function obligations: one
// good loop, one that never polls, one that polls only before the loop.
package engine

import "fix/cancel"

// run polls inside the loop: the good case, no diagnostic.
//
//tyr:cycleloop
func run(stop *cancel.Flag) int {
	n := 0
	for i := 0; i < 10; i++ {
		if stop.Stopped() {
			return n
		}
		n++
	}
	return n
}

// never forgets the poll entirely.
//
//tyr:cycleloop
func never(stop *cancel.Flag) int { // want `never calls Stopped\(\)`
	n := 0
	for i := 0; i < 10; i++ {
		n++
	}
	if stop != nil {
		n++
	}
	return n
}

// outside checks once before the loop, which polls nothing thereafter.
//
//tyr:cycleloop
func outside(stop *cancel.Flag) int { // want `polls Stopped\(\) outside its loop`
	if stop.Stopped() {
		return 0
	}
	n := 0
	for i := 0; i < 10; i++ {
		n++
	}
	return n
}

// closurePoll hides the poll inside a closure that may never run: it
// does not count as the loop's poll.
//
//tyr:cycleloop
func closurePoll(stop *cancel.Flag) func() bool { // want `never calls Stopped\(\)`
	for i := 0; i < 10; i++ {
		_ = i
	}
	return func() bool { return stop.Stopped() }
}
