// Package deleg is a delegating engine: every RunConfig literal it
// builds must arm Stop, or cancellation is silently lost.
package deleg

import (
	"fix/cancel"
	"fix/prog"
)

func Good(stop *cancel.Flag) int {
	return prog.Run(prog.RunConfig{MaxSteps: 10, Stop: stop})
}

func Forgot() int {
	return prog.Run(prog.RunConfig{MaxSteps: 10}) // want `does not arm Stop`
}

func ExplicitNil() int {
	return prog.Run(prog.RunConfig{MaxSteps: 10, Stop: nil}) // want `does not arm Stop`
}
