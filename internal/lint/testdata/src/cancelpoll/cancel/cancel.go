// Package cancel is the cancelpoll fixture's stand-in for the real
// cooperative stop flag.
package cancel

type Flag struct{ v bool }

// Stop raises the flag.
func (f *Flag) Stop() { f.v = true }

// Stopped reports whether the flag was raised; nil-safe.
func (f *Flag) Stopped() bool { return f != nil && f.v }
