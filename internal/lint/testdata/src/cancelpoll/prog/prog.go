// Package prog is the cancelpoll fixture's stand-in for the reference
// interpreter delegating engines run their cycles through.
package prog

import "fix/cancel"

type RunConfig struct {
	MaxSteps int
	Stop     *cancel.Flag
}

func Run(cfg RunConfig) int {
	n := 0
	for i := 0; i < cfg.MaxSteps; i++ {
		if cfg.Stop.Stopped() {
			return n
		}
		n++
	}
	return n
}
