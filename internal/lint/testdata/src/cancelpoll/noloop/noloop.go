// Package noloop seeds the package-level obligation: it is listed in
// Policy.CycleLoopPkgs but annotates no function, so deleting an
// engine's annotation (or its loop) cannot rot away silently.
package noloop // want `must contain a //tyr:cycleloop function`

func Step() {}
