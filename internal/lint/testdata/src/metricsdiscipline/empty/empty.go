// Package empty is listed in Policy.MetricsPkgs but declares no Metrics
// type: the analyzer reports the stale policy instead of silently
// checking nothing.
package empty // want `declares no Metrics type`

func Nop() {}
