package metrics

// handle lives outside the accessor file: atomic fields may only appear
// as the immediate receiver of an atomic method call, and mutex-guarded
// state may not be touched at all.
func handle(m *Metrics, name string) {
	m.hits.Add(1) // sanctioned: atomic method on an atomic field
	if m.misses.Load() > 0 {
		m.hits.Store(0) // sanctioned
	}
	m.requests[name]++ // want `mutex-guarded state`
	m.mu.Lock()        // want `mutex-guarded state`
	m.requests[name]++ // want `mutex-guarded state`
	m.mu.Unlock()      // want `mutex-guarded state`
	h := &m.hits       // want `atomic Metrics field hits touched outside an atomic method call`
	h.Add(1)
	m.ObserveRequest(name) // sanctioned: method calls are the API
}
