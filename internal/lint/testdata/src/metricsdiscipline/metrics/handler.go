package metrics

// handle lives outside the accessor file: atomic fields may only appear
// as the immediate receiver of an atomic method call, and mutex-guarded
// state may not be touched at all.
func handle(m *Metrics, name string) {
	m.hits.Add(1) // sanctioned: atomic method on an atomic field
	if m.misses.Load() > 0 {
		m.hits.Store(0) // sanctioned
	}
	m.requests[name]++ // want `mutex-guarded state`
	m.mu.Lock()        // want `mutex-guarded state`
	m.requests[name]++ // want `mutex-guarded state`
	m.mu.Unlock()      // want `mutex-guarded state`
	h := &m.hits       // want `atomic Metrics field hits touched outside an atomic method call`
	h.Add(1)
	m.ObserveRequest(name) // sanctioned: method calls are the API
}

// handleHist exercises the strict Histogram rule: even atomic-receiver
// touches are reported outside the accessor file.
func handleHist(h *Histogram) {
	h.Observe(1)           // sanctioned: the observe method is the API
	h.sumNS.Add(1)         // want `Histogram field sumNS may only be touched inside the accessor file`
	h.buckets[0].Add(1)    // want `Histogram field buckets may only be touched inside the accessor file`
	if len(h.bounds) > 0 { // want `Histogram field bounds may only be touched inside the accessor file`
		h.Observe(2)
	}
	_ = h.sumNS.Load() // want `Histogram field sumNS may only be touched inside the accessor file`
}
