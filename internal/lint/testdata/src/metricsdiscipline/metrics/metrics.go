// Package metrics is the metricsdiscipline fixture: a Metrics struct
// with atomic counters and mutex-guarded state. This file is the
// accessor file — it owns the fields and the locking discipline, so
// nothing here is reported.
package metrics

import (
	"sync"
	"sync/atomic"
)

type Metrics struct {
	hits   atomic.Int64
	misses atomic.Int64

	mu       sync.Mutex
	requests map[string]int64
}

// ObserveRequest is the sanctioned locked accessor.
func (m *Metrics) ObserveRequest(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.requests == nil {
		m.requests = make(map[string]int64)
	}
	m.requests[name]++
}

// Requests returns a copy of the request counts.
func (m *Metrics) Requests() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.requests))
	for k, v := range m.requests {
		out[k] = v
	}
	return out
}
