// Package metrics is the metricsdiscipline fixture: a Metrics struct
// with atomic counters and mutex-guarded state. This file is the
// accessor file — it owns the fields and the locking discipline, so
// nothing here is reported.
package metrics

import (
	"sync"
	"sync/atomic"
)

type Metrics struct {
	hits   atomic.Int64
	misses atomic.Int64

	mu       sync.Mutex
	requests map[string]int64
}

// ObserveRequest is the sanctioned locked accessor.
func (m *Metrics) ObserveRequest(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.requests == nil {
		m.requests = make(map[string]int64)
	}
	m.requests[name]++
}

// Requests returns a copy of the request counts.
func (m *Metrics) Requests() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.requests))
	for k, v := range m.requests {
		out[k] = v
	}
	return out
}

// Histogram is the strict fixture: Observe is its entire mutation API,
// and outside this accessor file no field of it may be mentioned at all.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64
	sumNS   atomic.Int64
}

// Observe is the sanctioned atomic observe method.
func (h *Histogram) Observe(v int64) {
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
			break
		}
	}
	h.sumNS.Add(v)
}
