package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path ("repro/internal/core")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files, in filename order
	Types *types.Package
	Info  *types.Info
}

// FileName returns the base name of the file containing pos.
func (p *Package) FileName(pos token.Pos) string {
	return filepath.Base(p.Fset.Position(pos).Filename)
}

// Loader loads and type-checks packages of one module from source,
// on demand and recursively, with no toolchain dependencies beyond the
// standard library. Module-internal imports resolve to directories under
// the module root; everything else goes through the stdlib source
// importer. Test files (_test.go) are not loaded: the invariants bind
// production code, and test packages may freely build graphs or allocate.
type Loader struct {
	Root    string // module root (directory containing go.mod)
	ModPath string // module path from go.mod
	Fset    *token.FileSet

	// Extra maps additional import paths to source directories: fixture
	// packages living under testdata that must type-check at synthetic,
	// policy-relevant paths. Consulted before the module and stdlib
	// resolvers.
	Extra map[string]string

	mu      sync.Mutex
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader creates a loader for the module rooted at dir (or the nearest
// parent of dir containing a go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
	}

	fset := token.NewFileSet()
	// The stdlib source importer resolves through go/build.Default; with
	// cgo enabled it would shell out to `go tool cgo` for packages like
	// net. Every cgo-using stdlib package this repo touches has a pure-Go
	// fallback, so disable cgo for a fully hermetic, source-only load.
	ctxt := build.Default
	ctxt.CgoEnabled = false
	build.Default = ctxt
	return &Loader{
		Root:    root,
		ModPath: modPath,
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// Import implements types.Importer: module-internal paths load from the
// module tree, everything else from GOROOT source.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, fixture := l.Extra[path]; fixture || path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(path string) string {
	if d, ok := l.Extra[path]; ok {
		return d
	}
	if path == l.ModPath {
		return l.Root
	}
	return filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, l.ModPath+"/")))
}

// Load loads and type-checks the module-internal package with the given
// import path (cached).
func (l *Loader) Load(path string) (*Package, error) {
	l.mu.Lock()
	if p, ok := l.pkgs[path]; ok {
		l.mu.Unlock()
		return p, nil
	}
	if l.loading[path] {
		l.mu.Unlock()
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	l.mu.Unlock()

	p, err := l.loadDir(l.dirFor(path), path)

	l.mu.Lock()
	delete(l.loading, path)
	if err == nil {
		l.pkgs[path] = p
	}
	l.mu.Unlock()
	return p, err
}

func (l *Loader) loadDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: %s: no Go files in %s", path, dir)
	}

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", path, err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// All loads every package under the module root, skipping testdata, dot,
// and underscore directories. Returned in import-path order.
func (l *Loader) All() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.Root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		dir := filepath.Dir(p)
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil {
			return err
		}
		path := l.ModPath
		if rel != "." {
			path = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		if len(paths) == 0 || paths[len(paths)-1] != path {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var pkgs []*Package
	seen := make(map[string]bool)
	for _, path := range paths {
		if seen[path] {
			continue
		}
		seen[path] = true
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
