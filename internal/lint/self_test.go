package lint

import "testing"

// TestRepoIsClean runs the full analyzer suite over this repository with
// the default policy and requires zero diagnostics: the invariants the
// fast paths stand on hold on every `go test ./...`, not only when CI's
// tyrlint job runs.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module typecheck is not short")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	diags := RunAnalyzers(pkgs, All(), DefaultPolicy())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("%d diagnostics; fix the violation or add a //tyr:ignore <analyzer> -- <reason>", len(diags))
	}
}
