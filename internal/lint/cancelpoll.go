package lint

import (
	"go/ast"
)

// CancelPoll proves the 504/drain guarantee: a tyrd request deadline arms
// a cancel.Flag, and the promise that the run aborts "within one cycle
// boundary" holds only if every engine's main loop actually polls the
// flag. Three obligations:
//
//  1. Every function annotated //tyr:cycleloop must call Stopped() on a
//     *cancel.Flag — and if the function contains a loop, the poll must
//     be inside one (a poll before the loop checks once and never again).
//  2. Every package in Policy.CycleLoopPkgs must contain at least one
//     //tyr:cycleloop function: deleting the annotation (or the loop) is
//     itself a violation, so the obligation cannot rot away silently.
//  3. Engines that delegate their cycles to the reference interpreter
//     (Policy.DelegatingEngines) must arm Stop in every RunConfig
//     literal they build — forgetting the field compiles fine and
//     silently loses cancellation.
var CancelPoll = &Analyzer{
	Name: "cancelpoll",
	Doc:  "every engine cycle loop polls its cancel.Flag (the 504/drain guarantee)",
	Run:  runCancelPoll,
}

// cycleloopMarker annotates an engine's main loop function.
const cycleloopMarker = "//tyr:cycleloop"

func runCancelPoll(pass *Pass) {
	pol := pass.Policy
	flagType := pol.CancelPkg + ".Flag"

	annotated := 0
	forEachFunc(pass.Pkg, func(_ *ast.File, fn *ast.FuncDecl) {
		if !funcAnnotated(fn, cycleloopMarker) || fn.Body == nil {
			return
		}
		annotated++
		checkCycleLoop(pass, fn, flagType)
	})

	if has(pol.CycleLoopPkgs, pass.Pkg.Path) && annotated == 0 {
		pass.Reportf(pass.Pkg.Files[0].Package,
			"package %s must contain a //tyr:cycleloop function (an engine main loop polling its cancel.Flag); none found", pass.Pkg.Path)
	}

	if has(pol.DelegatingEngines, pass.Pkg.Path) {
		checkDelegating(pass)
	}
}

// checkCycleLoop verifies one annotated function polls the flag in a loop.
func checkCycleLoop(pass *Pass, fn *ast.FuncDecl, flagType string) {
	hasLoop := false
	polled := false
	polledInLoop := false
	depth := 0
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			hasLoop = true
			depth++
			for _, child := range childrenOf(x) {
				ast.Inspect(child, walk)
			}
			depth--
			return false
		case *ast.CallExpr:
			if isStoppedCall(pass.Pkg, x, flagType) {
				polled = true
				if depth > 0 {
					polledInLoop = true
				}
			}
		case *ast.FuncLit:
			return false // a poll inside a closure is not this loop's poll
		}
		return true
	}
	ast.Inspect(fn.Body, walk)

	switch {
	case !polled:
		pass.Reportf(fn.Pos(), "//tyr:cycleloop function %s never calls Stopped() on a *%s (cancellation cannot interrupt this engine)", fn.Name.Name, flagType)
	case hasLoop && !polledInLoop:
		pass.Reportf(fn.Pos(), "//tyr:cycleloop function %s polls Stopped() outside its loop: the check runs once, then the loop is uncancellable", fn.Name.Name)
	}
}

// childrenOf returns the sub-nodes of a for/range statement to walk.
func childrenOf(n ast.Node) []ast.Node {
	var out []ast.Node
	switch x := n.(type) {
	case *ast.ForStmt:
		if x.Init != nil {
			out = append(out, x.Init)
		}
		if x.Cond != nil {
			out = append(out, x.Cond)
		}
		if x.Post != nil {
			out = append(out, x.Post)
		}
		if x.Body != nil {
			out = append(out, x.Body)
		}
	case *ast.RangeStmt:
		if x.X != nil {
			out = append(out, x.X)
		}
		if x.Body != nil {
			out = append(out, x.Body)
		}
	}
	return out
}

// isStoppedCall reports whether call is x.Stopped() with x a *cancel.Flag.
func isStoppedCall(pkg *Package, call *ast.CallExpr, flagType string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Stopped" {
		return false
	}
	return namedIs(typeOf(pkg, sel.X), flagType)
}

// checkDelegating verifies every RunConfig literal arms Stop, and that at
// least one exists (an engine that stopped building RunConfigs at all has
// changed shape enough that the policy needs a human look).
func checkDelegating(pass *Pass) {
	found := 0
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			if !namedIs(typeOf(pass.Pkg, lit), pass.Policy.RunConfigType) {
				return true
			}
			found++
			for _, elt := range lit.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Stop" {
						if tv, ok := pass.Pkg.Info.Types[kv.Value]; ok && tv.IsNil() {
							break // Stop: nil is as absent as no field
						}
						return true
					}
				}
			}
			pass.Reportf(lit.Pos(), "%s literal does not arm Stop: this engine delegates its cycles to the interpreter, and without the flag the run is uncancellable (504/drain guarantee)", pass.Policy.RunConfigType)
			return true
		})
	}
	if found == 0 {
		pass.Reportf(pass.Pkg.Files[0].Package,
			"package %s is a delegating engine but builds no %s: update lint.Policy if the engine changed shape", pass.Pkg.Path, pass.Policy.RunConfigType)
	}
}
