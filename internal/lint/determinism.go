package lint

import (
	"go/ast"
	"strings"
)

// Determinism protects the golden-digest suite's premise: the engines are
// pure functions of (graph, image, config). Three nondeterminism sources
// are banned inside Policy.EnginePkgs:
//
//   - wall-clock reads (time.Now, time.Since, ...): simulated time is the
//     only clock an engine may consult;
//   - math/rand and math/rand/v2: any randomness must come in through the
//     config as an explicit seed, never ambient;
//   - ranging over a map: Go randomizes map iteration order, which is
//     exactly the class of bug (results/traces varying run to run) the
//     golden suite would catch one release too late. A map range that is
//     provably order-insensitive may carry
//     "//tyr:nondet-ok -- <reason>" on the line above; the reason is
//     mandatory and reviewed like any other code.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "engine packages use no wall clock, no ambient randomness, and no map-range iteration",
	Run:  runDeterminism,
}

// nondetOKMarker allows a map range whose effect is order-insensitive.
const nondetOKMarker = "//tyr:nondet-ok"

// bannedTimeFuncs are the wall-clock entry points. Types and constants
// from package time (Duration arithmetic) remain legal.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true, "NewTimer": true, "NewTicker": true,
}

func runDeterminism(pass *Pass) {
	if !has(pass.Policy.EnginePkgs, pass.Pkg.Path) {
		return
	}
	for _, f := range pass.Pkg.Files {
		// nondetOK holds the lines carrying an order-insensitivity
		// waiver (with a reason); a waiver covers its line and the next.
		nondetOK := make(map[int]bool)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, nondetOKMarker) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, nondetOKMarker))
				_, reason, found := strings.Cut(rest, "--")
				if !found || strings.TrimSpace(reason) == "" {
					pass.Reportf(c.Pos(), "//tyr:nondet-ok requires a reason: \"//tyr:nondet-ok -- <why order cannot matter>\"")
					continue
				}
				nondetOK[pass.Pkg.Fset.Position(c.Pos()).Line] = true
			}
		}

		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "engine package %s imports %s: engines must be deterministic (golden digests); thread any randomness through the config as a seed", pass.Pkg.Path, path)
			}
		}

		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if pkgPath, name := calleePkgFunc(pass.Pkg, x); pkgPath == "time" && bannedTimeFuncs[name] {
					pass.Reportf(x.Pos(), "time.%s in engine package %s: simulated time is the only clock an engine may read (wall time diverges digests)", name, pass.Pkg.Path)
				}
			case *ast.RangeStmt:
				t := typeOf(pass.Pkg, x.X)
				if t == nil {
					return true
				}
				if isMapType(t) {
					line := pass.Pkg.Fset.Position(x.Pos()).Line
					if nondetOK[line] || nondetOK[line-1] {
						return true
					}
					pass.Reportf(x.Pos(), "map range in engine package %s: iteration order is randomized and leaks into results/traces; iterate a sorted key slice, or waive with //tyr:nondet-ok -- <reason>", pass.Pkg.Path)
				}
			}
			return true
		})
	}
}
