package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GraphImmut proves the compiled-graph sharing assumption: outside the
// graph builders (Policy.GraphBuilders), no statement writes through an
// expression rooted in a dfg struct. The tyrd LRU (internal/server/lru.go)
// hands one *dfg.Graph to any number of concurrent runs precisely because
// "engines never mutate a *dfg.Graph" — this analyzer turns that comment
// into a build break.
//
// Flagged writes: assignments (including op-assign), ++/--, and the copy
// builtin, whenever the lvalue's selector/index spine passes through a
// pointer to a dfg struct (g.Nodes[i].X = v, n.Outs[out] = ..., *np = n).
// Writes to a local *value copy* of a dfg struct are allowed — they cannot
// alias the shared graph. Aliases laundered through intermediate local
// variables (p := n.Outs[0]; p[1] = d) are out of static scope; the
// shared-graph race test in internal/harness is the dynamic complement.
var GraphImmut = &Analyzer{
	Name: "graphimmut",
	Doc:  "no package outside the graph builders writes to state reachable from *dfg.Graph",
	Run:  runGraphImmut,
}

func runGraphImmut(pass *Pass) {
	pol := pass.Policy
	if pass.Pkg.Path == pol.GraphPkg || has(pol.GraphBuilders, pass.Pkg.Path) {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.AssignStmt:
				if stmt.Tok == token.DEFINE {
					return true
				}
				for _, lhs := range stmt.Lhs {
					checkGraphWrite(pass, lhs, "assignment")
				}
			case *ast.IncDecStmt:
				checkGraphWrite(pass, stmt.X, stmt.Tok.String())
			case *ast.CallExpr:
				if id, ok := ast.Unparen(stmt.Fun).(*ast.Ident); ok && id.Name == "copy" && len(stmt.Args) == 2 {
					if _, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
						checkGraphWrite(pass, stmt.Args[0], "copy into")
					}
				}
			case *ast.RangeStmt:
				if stmt.Tok == token.ASSIGN {
					if stmt.Key != nil {
						checkGraphWrite(pass, stmt.Key, "range assignment")
					}
					if stmt.Value != nil {
						checkGraphWrite(pass, stmt.Value, "range assignment")
					}
				}
			}
			return true
		})
	}
}

// checkGraphWrite reports if lvalue writes through graph-owned storage.
func checkGraphWrite(pass *Pass, lvalue ast.Expr, how string) {
	e := lvalue
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			// *p = v with p pointing at a dfg struct overwrites shared
			// graph state wholesale.
			if namedStructFrom(typeOf(pass.Pkg, x.X), pass.Policy.GraphPkg) && isPointer(typeOf(pass.Pkg, x.X)) {
				pass.Reportf(lvalue.Pos(), "%s mutates %s state shared via *dfg.Graph (engines must never write compiled graphs)", how, pass.Policy.GraphPkg)
				return
			}
			e = x.X
		case *ast.SelectorExpr:
			t := typeOf(pass.Pkg, x.X)
			if namedStructFrom(t, pass.Policy.GraphPkg) {
				if isPointer(t) {
					pass.Reportf(lvalue.Pos(), "%s mutates %s.%s through a pointer to shared graph state (engines must never write compiled graphs)", how, deref(t).(*types.Named).Obj().Name(), x.Sel.Name)
					return
				}
				// Value operand: whether this aliases the graph depends
				// on where the value came from — keep walking the spine.
			}
			e = x.X
		case *ast.IndexExpr:
			// Indexing a slice (or map) aliases its backing store; the
			// verdict comes from where the slice itself was obtained.
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		default:
			return
		}
	}
}
