package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/compile"
	"repro/internal/dfg"
)

// vetApps is the full workload roster the static passes must accept: the
// seven Table II kernels plus the extra workloads exercising recursion
// (explicit stack) and ordering-class read-modify-write traffic.
func vetApps() []*apps.App {
	suite := apps.Suite(apps.ScaleTiny)
	suite = append(suite,
		apps.FibStack(12),
		apps.Histogram(64, 8, 7),
		apps.Bfs(24, 4, 0.2, 11, 0),
	)
	return suite
}

func compileTagged(t *testing.T, a *apps.App) *dfg.Graph {
	t.Helper()
	g, err := compile.Tagged(a.Prog, compile.Options{EntryArgs: a.Args})
	if err != nil {
		t.Fatalf("compile %s: %v", a.Name, err)
	}
	return g
}

// TestVetAcceptsWorkloads runs every static pass over every workload the
// repo ships. A false positive here means the verifier's model of the
// compiler's output is wrong, so failures print the full report.
func TestVetAcceptsWorkloads(t *testing.T) {
	for _, a := range vetApps() {
		t.Run(a.Name, func(t *testing.T) {
			g := compileTagged(t, a)
			rep := analysis.Vet(g, a.Prog)
			if !rep.OK() {
				t.Fatalf("vet rejected %s:\n%s", a.Name, rep)
			}
			for _, f := range rep.Findings {
				if f.Severity == analysis.SevWarning {
					t.Logf("warning: %s", f)
				}
			}
		})
	}
}
