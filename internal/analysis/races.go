package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dfg"
	"repro/internal/prog"
)

// CheckRaces flags load/store pairs on the same memory region that are not
// serialized by a shared ordering class. Tagged dataflow imposes no order
// between instructions beyond data dependences, so two accesses to the same
// region race unless the compiler threads an ordering token between them —
// which it does exactly for accesses sharing a class (the transactional-
// WaveCache view: an unordered conflicting pair is a detectable race, not
// undefined behavior).
//
// The rules, matching the conventions of the workload suite:
//
//   - a region that is both loaded and stored must have every access in a
//     single shared ordering class, or the loads may observe either side of
//     a concurrent store;
//   - a store-only region is accepted unclassed under the single-assignment
//     convention (each cell written once, as in the Table II kernels'
//     outputs) but must not mix classed and unclassed stores;
//   - a load-only region is read-only and cannot race.
func CheckRaces(p *prog.Program) []Finding {
	acc := collectAccesses(p)
	mems := make([]string, 0, len(acc))
	for m := range acc {
		mems = append(mems, m)
	}
	sort.Strings(mems)

	var out []Finding
	for _, m := range mems {
		a := acc[m]
		if len(a.stores) == 0 {
			continue // load-only: read-only region
		}
		if len(a.loads) == 0 {
			// Store-only: single-assignment convention, but a mix of
			// classed and unclassed stores signals a half-applied class.
			classes := classSet(a.stores)
			if len(classes) > 1 {
				out = append(out, Finding{
					Pass: "races", Severity: SevWarning, Block: -1, Node: dfg.InvalidNode,
					Msg: fmt.Sprintf("region %q is stored under inconsistent ordering classes %s (%s); stores are only unordered-safe if each cell is written once",
						m, classListString(classes), a.where()),
				})
			}
			continue
		}
		classes := classSet(append(append([]access{}, a.loads...), a.stores...))
		if len(classes) == 1 && classes[0] != "" {
			continue // fully serialized through one class
		}
		out = append(out, Finding{
			Pass: "races", Severity: SevError, Block: -1, Node: dfg.InvalidNode,
			Msg: fmt.Sprintf("region %q is both loaded and stored but not serialized by a single ordering class (classes %s; %s): unordered load/store pairs race",
				m, classListString(classes), a.where()),
		})
	}
	return out
}

type access struct {
	fn    string
	class string
	store bool
}

type memAccesses struct {
	loads  []access
	stores []access
}

// where summarizes the functions touching the region for diagnostics.
func (a *memAccesses) where() string {
	set := make(map[string]bool)
	for _, x := range a.loads {
		set[x.fn] = true
	}
	for _, x := range a.stores {
		set[x.fn] = true
	}
	fns := make([]string, 0, len(set))
	for f := range set {
		fns = append(fns, f)
	}
	sort.Strings(fns)
	return "in " + strings.Join(fns, ", ")
}

func classSet(as []access) []string {
	set := make(map[string]bool)
	for _, a := range as {
		set[a.class] = true
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

func classListString(classes []string) string {
	parts := make([]string, len(classes))
	for i, c := range classes {
		if c == "" {
			parts[i] = "(none)"
		} else {
			parts[i] = fmt.Sprintf("%q", c)
		}
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func collectAccesses(p *prog.Program) map[string]*memAccesses {
	acc := make(map[string]*memAccesses)
	get := func(mem string) *memAccesses {
		if acc[mem] == nil {
			acc[mem] = &memAccesses{}
		}
		return acc[mem]
	}
	var walkExpr func(fn string, e prog.Expr)
	var walkStmts func(fn string, ss []prog.Stmt)
	walkExpr = func(fn string, e prog.Expr) {
		switch ex := e.(type) {
		case prog.Bin:
			walkExpr(fn, ex.A)
			walkExpr(fn, ex.B)
		case prog.Select:
			walkExpr(fn, ex.Cond)
			walkExpr(fn, ex.Then)
			walkExpr(fn, ex.Else)
		case prog.Load:
			m := get(ex.Mem)
			m.loads = append(m.loads, access{fn: fn, class: ex.Class})
			walkExpr(fn, ex.Addr)
		case prog.Call:
			for _, a := range ex.Args {
				walkExpr(fn, a)
			}
		}
	}
	walkStmts = func(fn string, ss []prog.Stmt) {
		for _, s := range ss {
			switch st := s.(type) {
			case prog.Let:
				walkExpr(fn, st.E)
			case prog.Assign:
				walkExpr(fn, st.E)
			case prog.StoreStmt:
				m := get(st.Mem)
				m.stores = append(m.stores, access{fn: fn, class: st.Class, store: true})
				walkExpr(fn, st.Addr)
				walkExpr(fn, st.Val)
			case prog.If:
				walkExpr(fn, st.Cond)
				walkStmts(fn, st.Then)
				walkStmts(fn, st.Else)
			case prog.While:
				for _, v := range st.Vars {
					walkExpr(fn, v.Init)
				}
				walkExpr(fn, st.Cond)
				walkStmts(fn, st.Body)
			case prog.ExprStmt:
				walkExpr(fn, st.E)
			}
		}
	}
	for _, f := range p.Funcs {
		walkStmts(f.Name, f.Body)
		if f.Ret != nil {
			walkExpr(f.Name, f.Ret)
		}
	}
	return acc
}
