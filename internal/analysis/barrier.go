package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dfg"
)

// VerifyBarriers statically proves the free-barrier discipline of a tagged
// graph, block by block (Sec. IV-A of the paper, in the style of WaveCert's
// token-permission accounting):
//
//   - token balance: within one context of a block, every input port of a
//     node receives the same per-context token multiplicity, expressed as a
//     multilinear polynomial over steer-condition variables;
//   - exactly-once free: the block's free instructions fire a combined
//     multiplicity of exactly 1 per context, along every steer path;
//   - barrier coverage: every instruction of the block reaches a free of
//     the block through same-context edges, so no token can outlive its
//     tag's release;
//   - entry coverage: every transfer point creating contexts of the block
//     (external allocate or backedge) feeds the same set of entry ports;
//   - invocation contract: each context of a tail-recursive block either
//     spawns its successor or exits, exactly once; function contexts
//     return exactly once.
//
// Cross-context arrival counts (dynamically routed call returns, child-loop
// exit tokens) are unknowns solved from the balance equations themselves;
// anything left unresolved is reported as a warning rather than silently
// assumed.
func VerifyBarriers(g *dfg.Graph) []Finding {
	v := newVerifier(g)
	var out []Finding
	for b := range g.Blocks {
		out = append(out, v.verifyBlock(dfg.BlockID(b))...)
	}
	return out
}

// srcRef is one producing output port.
type srcRef struct {
	node dfg.NodeID
	out  int
}

type verifier struct {
	g *dfg.Graph

	// producers[port] lists every static edge into the port.
	producers map[dfg.Port][]srcRef
	injCount  map[dfg.Port]int

	// entrySpace[n] is the tag space an OpChangeTag node creates contexts
	// in (valid when entryOK[n]): every producer of its tag input is an
	// allocate's tag output for that space.
	entrySpace map[dfg.NodeID]dfg.BlockID

	// condition variables, keyed by the canonical producer set of the
	// steer's decider port; unknowns, keyed by receiving port.
	condVars  map[string]condVar
	condNames []string
	unknowns  map[dfg.Port]unknown
	unkNames  []string
}

func newVerifier(g *dfg.Graph) *verifier {
	v := &verifier{
		g:          g,
		producers:  make(map[dfg.Port][]srcRef),
		injCount:   make(map[dfg.Port]int),
		entrySpace: make(map[dfg.NodeID]dfg.BlockID),
		condVars:   make(map[string]condVar),
		unknowns:   make(map[dfg.Port]unknown),
	}
	for i := range g.Nodes {
		n := &g.Nodes[i]
		for out, dests := range n.Outs {
			for _, d := range dests {
				v.producers[d] = append(v.producers[d], srcRef{node: n.ID, out: out})
			}
		}
	}
	for _, inj := range g.Entries {
		v.injCount[inj.To]++
	}
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if n.Op != dfg.OpChangeTag {
			continue
		}
		space := dfg.BlockID(-1)
		ok := true
		for _, p := range v.producers[dfg.Port{Node: n.ID, In: 0}] {
			src := &g.Nodes[p.node]
			if src.Op != dfg.OpAllocate || p.out != dfg.AllocTagOut {
				ok = false
				break
			}
			if space >= 0 && space != src.Space {
				ok = false
				break
			}
			space = src.Space
		}
		if ok && space >= 0 {
			v.entrySpace[n.ID] = space
		}
	}
	return v
}

func (v *verifier) condVarOf(deciderPort dfg.Port) condVar {
	srcs := v.producers[deciderPort]
	keys := make([]string, 0, len(srcs)+1)
	for _, s := range srcs {
		keys = append(keys, fmt.Sprintf("n%d.%d", s.node, s.out))
	}
	if v.injCount[deciderPort] > 0 {
		keys = append(keys, "inj")
	}
	sort.Strings(keys)
	key := strings.Join(keys, "|")
	if cv, ok := v.condVars[key]; ok {
		return cv
	}
	cv := condVar(len(v.condNames))
	v.condVars[key] = cv
	name := "c(?)"
	if len(keys) > 0 {
		name = "c(" + keys[0] + ")"
	}
	v.condNames = append(v.condNames, name)
	return cv
}

func (v *verifier) unknownOf(p dfg.Port) unknown {
	if u, ok := v.unknowns[p]; ok {
		return u
	}
	u := unknown(len(v.unkNames))
	v.unknowns[p] = u
	v.unkNames = append(v.unkNames, fmt.Sprintf("x(n%d.%d)", p.Node, p.In))
	return u
}

func (v *verifier) condName(c condVar) string { return v.condNames[c] }
func (v *verifier) unkName(u unknown) string  { return v.unkNames[u] }

func (v *verifier) desc(id dfg.NodeID) string {
	n := &v.g.Nodes[id]
	if n.Label != "" {
		return fmt.Sprintf("n%d(%s %q)", id, n.Op, n.Label)
	}
	return fmt.Sprintf("n%d(%s)", id, n.Op)
}

// blockCtx holds the per-block classification shared by the solve passes.
type blockCtx struct {
	bid   dfg.BlockID
	nodes []dfg.NodeID
	topo  []dfg.NodeID

	inCtx     map[dfg.Port][]srcRef            // same-context producing edges
	entry     map[dfg.Port]bool                // fed once per context creation
	crossed   map[dfg.Port]bool                // cross-context arrivals (unknown count)
	entrySite map[dfg.NodeID]map[dfg.Port]bool // creating allocate -> ports

	exitCTs []dfg.NodeID // changeTags leaving the block (invocation exits)
}

// classify splits the edges touching one block into same-context edges,
// context-creating entry edges, and cross-context (unknown) arrivals.
func (v *verifier) classify(bid dfg.BlockID) *blockCtx {
	g := v.g
	bc := &blockCtx{
		bid:       bid,
		inCtx:     make(map[dfg.Port][]srcRef),
		entry:     make(map[dfg.Port]bool),
		crossed:   make(map[dfg.Port]bool),
		entrySite: make(map[dfg.NodeID]map[dfg.Port]bool),
	}
	inBlock := func(id dfg.NodeID) bool { return g.Nodes[id].Block == bid }
	for i := range g.Nodes {
		if g.Nodes[i].Block == bid {
			bc.nodes = append(bc.nodes, g.Nodes[i].ID)
		}
	}
	for _, id := range bc.nodes {
		n := &g.Nodes[id]
		for in := 0; in < n.NIn; in++ {
			if n.ConstIn[in].Valid {
				continue
			}
			port := dfg.Port{Node: id, In: in}
			for _, src := range v.producers[port] {
				sn := &g.Nodes[src.node]
				crossData := sn.Op == dfg.OpChangeTag && src.out == dfg.CTDataOut
				switch {
				case crossData:
					if sp, ok := v.entrySpace[src.node]; ok && sp == bid {
						bc.entry[port] = true
						// Attribute to each creating allocate site.
						for _, ap := range v.producers[dfg.Port{Node: src.node, In: 0}] {
							site := bc.entrySite[ap.node]
							if site == nil {
								site = make(map[dfg.Port]bool)
								bc.entrySite[ap.node] = site
							}
							site[port] = true
						}
					} else {
						bc.crossed[port] = true
					}
				case sn.Block != bid:
					// A same-tag edge from another block would violate the
					// tag discipline; treat it as an unknown arrival so the
					// balance equations expose any inconsistency.
					bc.crossed[port] = true
				default:
					bc.inCtx[port] = append(bc.inCtx[port], src)
				}
			}
			// Dynamically routed landing sites (forwards with no static
			// producers) receive tokens the graph cannot show.
			if len(v.producers[port]) == 0 && v.injCount[port] == 0 && n.Op == dfg.OpForward {
				bc.crossed[port] = true
			}
		}
		// Exit transfer points: changeTags whose retagged output leaves
		// the block without creating a context of it (loop exits).
		if n.Op == dfg.OpChangeTag {
			if _, isEntry := v.entrySpace[id]; !isEntry {
				leaves := false
				for _, d := range n.Outs[dfg.CTDataOut] {
					if !inBlock(d.Node) {
						leaves = true
					}
				}
				if leaves {
					bc.exitCTs = append(bc.exitCTs, id)
				}
			}
		}
	}
	return bc
}

// topoSort orders the block's nodes along same-context edges, reporting a
// cycle as impossible-to-verify (a context's dataflow must be a DAG).
func (bc *blockCtx) topoSort(g *dfg.Graph) bool {
	indeg := make(map[dfg.NodeID]int, len(bc.nodes))
	succ := make(map[dfg.NodeID][]dfg.NodeID)
	for _, id := range bc.nodes {
		indeg[id] = 0
	}
	for port, srcs := range bc.inCtx {
		for _, s := range srcs {
			succ[s.node] = append(succ[s.node], port.Node)
			indeg[port.Node]++
		}
	}
	queue := make([]dfg.NodeID, 0, len(bc.nodes))
	for _, id := range bc.nodes {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i] < queue[j] })
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		bc.topo = append(bc.topo, id)
		for _, nxt := range succ[id] {
			indeg[nxt]--
			if indeg[nxt] == 0 {
				queue = append(queue, nxt)
			}
		}
	}
	return len(bc.topo) == len(bc.nodes)
}

// eqRec is one balance constraint: expr must equal zero.
type eqRec struct {
	l    lin
	node dfg.NodeID
	msg  string
}

func (v *verifier) verifyBlock(bid dfg.BlockID) []Finding {
	g := v.g
	bc := v.classify(bid)
	if len(bc.nodes) == 0 {
		return nil
	}
	find := func(sev Severity, node dfg.NodeID, format string, args ...interface{}) Finding {
		return Finding{Pass: "barrier", Severity: sev, Block: bid, Node: node, Msg: fmt.Sprintf(format, args...)}
	}
	var out []Finding

	var frees []dfg.NodeID
	for _, id := range bc.nodes {
		n := &g.Nodes[id]
		if n.Op == dfg.OpFree && n.Space == bid {
			frees = append(frees, id)
		}
	}
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if n.Op == dfg.OpFree && n.Space == bid && n.Block != bid {
			out = append(out, find(SevWarning, n.ID,
				"free of tag space %d sits in block %d; its firing count is not verified against this space", bid, n.Block))
		}
	}
	if len(frees) == 0 {
		out = append(out, find(SevError, dfg.InvalidNode,
			"block %q has no free instruction: its contexts can never release their tags", g.Blocks[bid].Name))
		return out
	}

	if !bc.topoSort(g) {
		out = append(out, find(SevError, dfg.InvalidNode,
			"block %q has a same-context dataflow cycle; a context can never complete", g.Blocks[bid].Name))
		return out
	}

	// Entry coverage: every context-creating site must feed the same ports.
	var sites []dfg.NodeID
	for a := range bc.entrySite {
		sites = append(sites, a)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	for i := 1; i < len(sites); i++ {
		a, b := bc.entrySite[sites[0]], bc.entrySite[sites[i]]
		if !samePortSet(a, b) {
			out = append(out, find(SevError, sites[i],
				"transfer point %s feeds entry ports %s but %s feeds %s: contexts created at one site would starve",
				v.desc(sites[i]), portSetString(b), v.desc(sites[0]), portSetString(a)))
		}
	}

	// Iteratively solve the balance equations, resolving cross-context
	// unknowns as the equations pin them down.
	resolved := make(map[unknown]poly)
	var eqs []eqRec
	maxIter := len(bc.nodes) + 2
	for iter := 0; ; iter++ {
		eqs = v.forwardPass(bc, frees, resolved)
		progress := false
		for _, e := range eqs {
			l := e.l.subst(resolved)
			u, coef, ok := l.soleUnknown()
			if !ok {
				continue
			}
			if _, done := resolved[u]; done {
				continue
			}
			// known + coef*u == 0  =>  u = -known/coef
			val := poly{}
			val.addInto(l.known, -coef) // coef is +-1, so -coef == 1/(-coef)... both are self-inverse
			resolved[u] = val
			progress = true
		}
		if !progress || iter >= maxIter {
			break
		}
	}
	eqs = v.forwardPass(bc, frees, resolved)

	unresolvedWarned := false
	for _, e := range eqs {
		l := e.l.subst(resolved)
		if l.isZero() {
			continue
		}
		if len(l.us) == 0 {
			out = append(out, find(SevError, e.node, "%s (imbalance: %s)",
				e.msg, l.render(v.condName, v.unkName)))
			continue
		}
		if !unresolvedWarned {
			out = append(out, find(SevWarning, e.node,
				"%s could not be verified: cross-context arrival count %s is unresolved",
				e.msg, l.render(v.condName, v.unkName)))
			unresolvedWarned = true
		}
	}

	// Barrier coverage: every node must reach a free of the block along
	// same-context edges, or its tokens could outlive the tag's release.
	reach := make(map[dfg.NodeID]bool, len(bc.nodes))
	work := append([]dfg.NodeID{}, frees...)
	for _, f := range frees {
		reach[f] = true
	}
	pred := make(map[dfg.NodeID][]dfg.NodeID)
	for port, srcs := range bc.inCtx {
		for _, s := range srcs {
			pred[port.Node] = append(pred[port.Node], s.node)
		}
	}
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		for _, p := range pred[id] {
			if !reach[p] {
				reach[p] = true
				work = append(work, p)
			}
		}
	}
	for _, id := range bc.nodes {
		if !reach[id] {
			out = append(out, find(SevError, id,
				"%s is not covered by block %q's free barrier: its firing is not ordered before the tag's free",
				v.desc(id), g.Blocks[bid].Name))
		}
	}
	return out
}

// forwardPass computes per-port multiplicities in topological order and
// returns the balance constraints (all must be zero).
func (v *verifier) forwardPass(bc *blockCtx, frees []dfg.NodeID, resolved map[unknown]poly) []eqRec {
	g := v.g
	outExpr := make(map[dfg.NodeID][]lin, len(bc.nodes))
	var eqs []eqRec
	multOf := make(map[dfg.NodeID]lin, len(bc.nodes))

	portExpr := func(port dfg.Port) lin {
		e := lin{known: poly{}}
		for _, src := range bc.inCtx[port] {
			if exprs, ok := outExpr[src.node]; ok && src.out < len(exprs) {
				e = e.addInto(exprs[src.out], 1)
			}
		}
		if bc.entry[port] {
			e = e.addInto(linConst(1), 1)
		}
		if c := v.injCount[port]; c > 0 {
			e = e.addInto(linConst(int64(c)), 1)
		}
		if bc.crossed[port] {
			e = e.addInto(linUnknown(v.unknownOf(port)), 1)
		}
		return e.subst(resolved)
	}

	for _, id := range bc.topo {
		n := &g.Nodes[id]
		var mult lin
		haveFirst := false
		firstIn := -1
		for in := 0; in < n.NIn; in++ {
			if n.ConstIn[in].Valid {
				continue
			}
			e := portExpr(dfg.Port{Node: id, In: in})
			if !haveFirst {
				mult, haveFirst, firstIn = e, true, in
				continue
			}
			eqs = append(eqs, eqRec{
				l:    linSub(e, mult),
				node: id,
				msg: fmt.Sprintf("token imbalance at %s: input %d receives a different per-context multiplicity than input %d",
					v.desc(id), in, firstIn),
			})
		}
		if !haveFirst {
			mult = linConst(0)
		}
		multOf[id] = mult

		outs := make([]lin, dfg.NumOut(n.Op))
		for o := range outs {
			outs[o] = mult
		}
		if n.Op == dfg.OpSteer {
			switch {
			case n.ConstIn[0].Valid:
				zero := linConst(0)
				if n.ConstIn[0].V != 0 {
					outs[dfg.SteerFalseOut] = zero
				} else {
					outs[dfg.SteerTrueOut] = zero
				}
			default:
				cv := v.condVarOf(dfg.Port{Node: id, In: 0})
				outs[dfg.SteerTrueOut] = mult.mulVar(cv)
				outs[dfg.SteerFalseOut] = linSub(mult, outs[dfg.SteerTrueOut])
			}
		}
		outExpr[id] = outs
	}

	// Exactly-once free: the block's frees fire a combined multiplicity of
	// 1 per context.
	freeSum := linConst(-1)
	for _, f := range frees {
		freeSum = freeSum.addInto(multOf[f], 1)
	}
	eqs = append(eqs, eqRec{
		l:    freeSum,
		node: frees[0],
		msg: fmt.Sprintf("block %q must free its tag exactly once per context along every steer path",
			g.Blocks[bc.bid].Name),
	})

	// Invocation contract.
	blk := &g.Blocks[bc.bid]
	if blk.TailRecursive {
		spawn := linConst(0)
		for _, id := range bc.nodes {
			n := &g.Nodes[id]
			if n.Op == dfg.OpAllocate && n.Space == bc.bid && !n.External {
				spawn = spawn.addInto(multOf[id], 1)
			}
		}
		for _, ct := range bc.exitCTs {
			l := linAdd(multOf[ct], spawn).addInto(linConst(1), -1)
			eqs = append(eqs, eqRec{
				l:    l,
				node: ct,
				msg: fmt.Sprintf("each context of loop block %q must either spawn its successor or exit via %s, exactly once",
					blk.Name, v.desc(ct)),
			})
		}
	}
	if blk.Kind == dfg.BlockFunc {
		for _, id := range bc.nodes {
			if g.Nodes[id].Op == dfg.OpChangeTagDyn {
				eqs = append(eqs, eqRec{
					l:    linSub(multOf[id], linConst(1)),
					node: id,
					msg:  fmt.Sprintf("function block %q must return through %s exactly once per context", blk.Name, v.desc(id)),
				})
			}
		}
	}
	return eqs
}

func samePortSet(a, b map[dfg.Port]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for p := range a {
		if !b[p] {
			return false
		}
	}
	return true
}

func portSetString(s map[dfg.Port]bool) string {
	ports := make([]dfg.Port, 0, len(s))
	for p := range s {
		ports = append(ports, p)
	}
	sort.Slice(ports, func(i, j int) bool {
		if ports[i].Node != ports[j].Node {
			return ports[i].Node < ports[j].Node
		}
		return ports[i].In < ports[j].In
	})
	parts := make([]string, len(ports))
	for i, p := range ports {
		parts[i] = p.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
