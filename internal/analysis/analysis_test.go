package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/prog"
)

// dropEdgesInto removes every static edge feeding the given port, leaving
// the port starved — the shape of a compiler bug that forgets to connect a
// join input.
func dropEdgesInto(g *dfg.Graph, port dfg.Port) int {
	dropped := 0
	for i := range g.Nodes {
		n := &g.Nodes[i]
		for out, dests := range n.Outs {
			kept := dests[:0]
			for _, d := range dests {
				if d == port {
					dropped++
					continue
				}
				kept = append(kept, d)
			}
			n.Outs[out] = kept
		}
	}
	return dropped
}

func hasError(fs []analysis.Finding, pass string) bool {
	for _, f := range fs {
		if f.Severity == analysis.SevError && f.Pass == pass {
			return true
		}
	}
	return false
}

// TestBarrierCatchesDroppedJoinInput corrupts a compiled graph by removing
// one input edge of a join inside a concurrent block: the join's ports now
// receive different per-context multiplicities, which the balance equations
// must reject.
func TestBarrierCatchesDroppedJoinInput(t *testing.T) {
	g := compileTagged(t, apps.Histogram(64, 8, 7))
	if errs := analysis.Vet(g, nil).Errors(); len(errs) != 0 {
		t.Fatalf("clean graph rejected: %v", errs)
	}

	corrupted := false
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if n.Op != dfg.OpJoin || n.Block == 0 || n.NIn < 2 {
			continue
		}
		if dropEdgesInto(g, dfg.Port{Node: n.ID, In: 1}) > 0 {
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Fatal("no join with a droppable input found")
	}

	fs := analysis.VerifyBarriers(g)
	if !hasError(fs, "barrier") {
		t.Fatalf("dropped join input not detected; findings: %v", fs)
	}
	t.Logf("detected: %s", fs[0])
}

// TestBarrierCatchesDoubleFree duplicates the token edge feeding a block's
// free instruction, making the free fire twice per context — the
// exactly-once free equation must reject it.
func TestBarrierCatchesDoubleFree(t *testing.T) {
	g := compileTagged(t, apps.Histogram(64, 8, 7))

	corrupted := false
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if n.Op != dfg.OpFree || n.Block == 0 {
			continue
		}
		target := dfg.Port{Node: n.ID, In: 0}
		for j := range g.Nodes {
			src := &g.Nodes[j]
			for out, dests := range src.Outs {
				for _, d := range dests {
					if d == target {
						src.Outs[out] = append(src.Outs[out], target)
						corrupted = true
						break
					}
				}
				if corrupted {
					break
				}
			}
			if corrupted {
				break
			}
		}
		if corrupted {
			break
		}
	}
	if !corrupted {
		t.Fatal("no free with a duplicable input edge found")
	}

	fs := analysis.VerifyBarriers(g)
	if !hasError(fs, "barrier") {
		t.Fatalf("double free not detected; findings: %v", fs)
	}
}

// TestRacesCatchMissingClass builds the minimal racy program — a region
// that is loaded without a class and stored with one — and checks the race
// pass rejects it, while the fully classed version is accepted.
func TestRacesCatchMissingClass(t *testing.T) {
	build := func(loadClass string) *prog.Program {
		p := prog.NewProgram("racy", "main")
		p.DeclareMem("acc", 1)
		p.AddFunc("main", nil, prog.C(0),
			prog.ForRange("racy.loop", "i", prog.C(0), prog.C(4), nil,
				prog.StClass("acc", prog.C(0),
					prog.Add(prog.LdClass("acc", prog.C(0), loadClass), prog.V("i")), "a"),
			),
		)
		return p
	}

	if fs := analysis.CheckRaces(build("a")); len(fs) != 0 {
		t.Fatalf("classed RMW flagged: %v", fs)
	}
	fs := analysis.CheckRaces(build(""))
	if !hasError(fs, "races") {
		t.Fatalf("unclassed load against classed store not detected; findings: %v", fs)
	}
	if !strings.Contains(fs[0].Msg, "acc") {
		t.Errorf("finding does not name the region: %s", fs[0].Msg)
	}
}

// TestTagSafetyHist checks the static minimum-pool prediction for the flat
// histogram loop against the dynamic outcome on both sides of the
// threshold: the holds chain is root -> loop plus the backedge reserve, so
// 3 global tags are needed and 2 must deadlock.
func TestTagSafetyHist(t *testing.T) {
	a := apps.Histogram(64, 8, 7)
	g := compileTagged(t, a)
	rep, _ := analysis.TagSafety(g)

	if rep.Unbounded {
		t.Errorf("flat loop reported as unbounded demand")
	}
	if rep.MinGlobalTags != 3 {
		t.Errorf("MinGlobalTags = %d, want 3", rep.MinGlobalTags)
	}
	if v := rep.GlobalBounded(2); v != analysis.VerdictWillDeadlock {
		t.Errorf("GlobalBounded(2) = %v, want will-deadlock", v)
	}
	if v := rep.GlobalBounded(3); v != analysis.VerdictSafe {
		t.Errorf("GlobalBounded(3) = %v, want safe", v)
	}

	for k, wantDeadlock := range map[int]bool{2: true, 3: false} {
		res, err := core.Run(g, a.NewImage(), core.Config{Policy: core.PolicyGlobalBounded, GlobalTags: k})
		if err != nil {
			t.Fatalf("run k=%d: %v", k, err)
		}
		if res.Deadlocked != wantDeadlock {
			t.Errorf("dynamic GlobalBounded(%d): deadlocked=%v, static prediction says %v",
				k, res.Deadlocked, wantDeadlock)
		}
	}
}

// TestTagSafetyDmvFig11 is the paper's Fig. 11 as a static warning: the
// tag-safety pass must flag the GlobalBounded(8) dmv configuration, and the
// engine must confirm the deadlock dynamically.
func TestTagSafetyDmvFig11(t *testing.T) {
	a := apps.Dmv(16, 16, 1)
	g := compileTagged(t, a)
	rep, fs := analysis.TagSafety(g)

	if !rep.Unbounded {
		t.Fatalf("dmv (tail-recursive outer allocating into inner) not reported unbounded:\n%s", rep)
	}
	if v := rep.GlobalBounded(8); v != analysis.VerdictMayDeadlock {
		t.Errorf("GlobalBounded(8) = %v, want may-deadlock", v)
	}
	warned := false
	for _, f := range fs {
		if f.Severity == analysis.SevWarning && strings.Contains(f.Msg, "Fig. 11") {
			warned = true
		}
	}
	if !warned {
		t.Errorf("no Fig. 11 warning among findings: %v", fs)
	}

	res, err := core.Run(g, a.NewImage(), core.Config{Policy: core.PolicyGlobalBounded, GlobalTags: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatalf("dmv under GlobalBounded(8) did not deadlock dynamically (cycles=%d)", res.Cycles)
	}

	// TYR with the per-block minimum the analysis computed must complete.
	minTags := 1
	for _, b := range rep.Blocks {
		if b.MinLocalTags > minTags {
			minTags = b.MinLocalTags
		}
	}
	res, err = core.Run(g, a.NewImage(), core.Config{Policy: core.PolicyTyr, TagsPerBlock: minTags})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("TYR with %d tags/block did not complete: %v", minTags, res.Deadlock)
	}
}
