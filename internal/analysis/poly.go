package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// The free-barrier verifier reasons about how many tokens each port receives
// per context. Multiplicities are multilinear polynomials over boolean
// condition variables (one per steer decider wire): a node under one branch
// arm fires c times per context, its sibling 1-c times, and their merged
// contributions sum back to exactly 1. Because the variables are boolean,
// c*c = c, so every polynomial stays multilinear and equality is syntactic
// after normalization.

// condVar identifies one steer decider wire. Two steers driven by the same
// wire (the same producer set) share a variable, which is what makes
// complementary branch arms cancel.
type condVar int

// monomial keys are the canonical sorted var-id list ("" = constant term).
type poly map[string]int64

func monoKey(vars []condVar) string {
	if len(vars) == 0 {
		return ""
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	parts := make([]string, 0, len(vars))
	var last condVar = -1
	for _, v := range vars {
		if v == last {
			continue // boolean idempotence: c*c = c
		}
		last = v
		parts = append(parts, fmt.Sprint(int(v)))
	}
	return strings.Join(parts, ",")
}

func monoVars(key string) []condVar {
	if key == "" {
		return nil
	}
	parts := strings.Split(key, ",")
	out := make([]condVar, len(parts))
	for i, p := range parts {
		fmt.Sscanf(p, "%d", &out[i])
	}
	return out
}

func polyConst(k int64) poly {
	if k == 0 {
		return poly{}
	}
	return poly{"": k}
}

func (p poly) clone() poly {
	out := make(poly, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

func (p poly) addInto(q poly, scale int64) poly {
	for k, v := range q {
		p[k] += v * scale
		if p[k] == 0 {
			delete(p, k)
		}
	}
	return p
}

func polyAdd(a, b poly) poly { return a.clone().addInto(b, 1) }
func polySub(a, b poly) poly { return a.clone().addInto(b, -1) }
func (p poly) isZero() bool  { return len(p) == 0 }
func (p poly) isConst() (int64, bool) {
	switch len(p) {
	case 0:
		return 0, true
	case 1:
		v, ok := p[""]
		return v, ok
	}
	return 0, false
}

// mulVar multiplies by condition variable v (idempotently).
func (p poly) mulVar(v condVar) poly {
	out := make(poly, len(p))
	for k, coef := range p {
		nk := monoKey(append(monoVars(k), v))
		out[nk] += coef
		if out[nk] == 0 {
			delete(out, nk)
		}
	}
	return out
}

// String renders the polynomial with the verifier's variable names.
func (p poly) render(names func(condVar) string) string {
	if len(p) == 0 {
		return "0"
	}
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		coef := p[k]
		if i > 0 {
			if coef >= 0 {
				b.WriteString(" + ")
			} else {
				b.WriteString(" - ")
				coef = -coef
			}
		} else if coef < 0 {
			b.WriteString("-")
			coef = -coef
		}
		vars := monoVars(k)
		if len(vars) == 0 {
			fmt.Fprintf(&b, "%d", coef)
			continue
		}
		if coef != 1 {
			fmt.Fprintf(&b, "%d*", coef)
		}
		terms := make([]string, len(vars))
		for j, v := range vars {
			terms[j] = names(v)
		}
		b.WriteString(strings.Join(terms, "*"))
	}
	return b.String()
}

// unknown identifies a port whose per-context arrival count cannot be
// assumed (dynamically routed call returns and child-block exit tokens).
// The verifier solves for unknowns using the balance equations themselves.
type unknown int

// lin is a linear expression over unknowns with polynomial coefficients:
// known + sum(coef_u * u).
type lin struct {
	known poly
	us    map[unknown]poly
}

func linConst(k int64) lin { return lin{known: polyConst(k)} }
func linPoly(p poly) lin   { return lin{known: p} }

func linUnknown(u unknown) lin {
	return lin{known: poly{}, us: map[unknown]poly{u: polyConst(1)}}
}

func (l lin) clone() lin {
	out := lin{known: l.known.clone()}
	if len(l.us) > 0 {
		out.us = make(map[unknown]poly, len(l.us))
		for u, c := range l.us {
			out.us[u] = c.clone()
		}
	}
	return out
}

func (l lin) addInto(o lin, scale int64) lin {
	if l.known == nil {
		l.known = poly{}
	}
	l.known.addInto(o.known, scale)
	for u, c := range o.us {
		if l.us == nil {
			l.us = make(map[unknown]poly)
		}
		if l.us[u] == nil {
			l.us[u] = poly{}
		}
		l.us[u].addInto(c, scale)
		if l.us[u].isZero() {
			delete(l.us, u)
		}
	}
	return l
}

func linAdd(a, b lin) lin { return a.clone().addInto(b, 1) }
func linSub(a, b lin) lin { return a.clone().addInto(b, -1) }

func (l lin) mulVar(v condVar) lin {
	out := lin{known: l.known.mulVar(v)}
	for u, c := range l.us {
		if out.us == nil {
			out.us = make(map[unknown]poly)
		}
		out.us[u] = c.mulVar(v)
	}
	return out
}

func (l lin) isZero() bool { return l.known.isZero() && len(l.us) == 0 }

// subst replaces resolved unknowns by their polynomial values.
func (l lin) subst(resolved map[unknown]poly) lin {
	if len(l.us) == 0 {
		return l
	}
	out := lin{known: l.known.clone()}
	for u, c := range l.us {
		val, ok := resolved[u]
		if !ok {
			if out.us == nil {
				out.us = make(map[unknown]poly)
			}
			out.us[u] = c
			continue
		}
		// coef * val: multiply polynomials (both multilinear).
		out.known.addInto(polyMul(c, val), 1)
	}
	return out
}

// polyMul multiplies two multilinear polynomials.
func polyMul(a, b poly) poly {
	out := poly{}
	for ka, va := range a {
		for kb, vb := range b {
			nk := monoKey(append(monoVars(ka), monoVars(kb)...))
			out[nk] += va * vb
			if out[nk] == 0 {
				delete(out, nk)
			}
		}
	}
	return out
}

// soleUnknown reports (u, coef, ok) when the expression has exactly one
// unknown whose coefficient is the constant +1 or -1, which makes the
// equation l == 0 directly solvable.
func (l lin) soleUnknown() (unknown, int64, bool) {
	if len(l.us) != 1 {
		return 0, 0, false
	}
	for u, c := range l.us {
		if k, ok := c.isConst(); ok && (k == 1 || k == -1) {
			return u, k, true
		}
	}
	return 0, 0, false
}

func (l lin) render(condName func(condVar) string, unkName func(unknown) string) string {
	s := l.known.render(condName)
	if len(l.us) == 0 {
		return s
	}
	us := make([]unknown, 0, len(l.us))
	for u := range l.us {
		us = append(us, u)
	}
	sort.Slice(us, func(i, j int) bool { return us[i] < us[j] })
	var b strings.Builder
	if s != "0" {
		b.WriteString(s)
	}
	for _, u := range us {
		c := l.us[u]
		if b.Len() > 0 {
			b.WriteString(" + ")
		}
		if k, ok := c.isConst(); ok && k == 1 {
			b.WriteString(unkName(u))
		} else {
			fmt.Fprintf(&b, "(%s)*%s", c.render(condName), unkName(u))
		}
	}
	return b.String()
}
