// Package analysis statically verifies compiled dataflow graphs, turning
// the correctness claims the engines check dynamically into compile-time
// proofs (in the spirit of WaveCert's token-permission accounting for
// dataflow compiler output):
//
//   - VerifyBarriers proves, per concurrent block, that the block's tag is
//     freed exactly once per context along every steer path, that every
//     node's token traffic is balanced (each input port of a node receives
//     the same per-context multiplicity), and that every instruction is
//     covered by the block's free barrier. A compiler bug that today only
//     surfaces as a hang or a token collision becomes a static error
//     naming the offending node.
//
//   - TagSafety computes each block's minimum tag requirement from the
//     external-allocate / tail-recursion structure and statically predicts
//     which bounded-global-pool configurations can deadlock (the paper's
//     Fig. 11 becomes a static warning).
//
//   - CheckRaces flags load/store pairs on the same memory region that are
//     not serialized by a shared ordering class (the transactional-
//     WaveCache view of memory-ordering violations as detectable races).
//
// Vet bundles all three; the tyrc -vet and tyrsim -check flags expose them
// on the command line.
package analysis

import (
	"fmt"
	"strings"

	"repro/internal/dfg"
	"repro/internal/prog"
)

// Severity grades a finding.
type Severity uint8

const (
	// SevError marks a definite violation: the graph (or program) breaks
	// an invariant the machine relies on.
	SevError Severity = iota
	// SevWarning marks a property the analysis could not prove but also
	// could not refute (e.g. unresolved cross-context arrival counts).
	SevWarning
	// SevInfo carries advisory results (tag-requirement predictions).
	SevInfo
)

func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	}
	return "info"
}

// Finding is one diagnostic from a static pass.
type Finding struct {
	Pass     string // "barrier", "tags", or "races"
	Severity Severity
	Block    dfg.BlockID // offending block, or -1
	Node     dfg.NodeID  // offending node, or dfg.InvalidNode
	Msg      string
}

func (f Finding) String() string {
	loc := ""
	if f.Node != dfg.InvalidNode {
		loc = fmt.Sprintf(" n%d", f.Node)
	} else if f.Block >= 0 {
		loc = fmt.Sprintf(" blk%d", f.Block)
	}
	return fmt.Sprintf("%s [%s]%s: %s", f.Severity, f.Pass, loc, f.Msg)
}

// Report aggregates the results of running the static passes on one graph.
type Report struct {
	Graph    string
	Findings []Finding
	Tags     *TagReport // populated when the tags pass ran
}

// Errors returns only the SevError findings.
func (r *Report) Errors() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Severity == SevError {
			out = append(out, f)
		}
	}
	return out
}

// OK reports whether no pass found a definite violation.
func (r *Report) OK() bool { return len(r.Errors()) == 0 }

// String renders the report for CLI consumption.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "vet %s:", r.Graph)
	if len(r.Findings) == 0 {
		b.WriteString(" all passes clean\n")
	} else {
		b.WriteString("\n")
		for _, f := range r.Findings {
			fmt.Fprintf(&b, "  %s\n", f)
		}
	}
	if r.Tags != nil {
		b.WriteString(r.Tags.String())
	}
	return b.String()
}

// Vet runs every applicable static pass: the free-barrier verifier and the
// tag-safety analysis on the graph (tagged lowerings only), and the
// memory-ordering race detector on the source program when provided (p may
// be nil when only the graph is available).
func Vet(g *dfg.Graph, p *prog.Program) *Report {
	r := &Report{Graph: g.Name}
	if g.RootFree == dfg.InvalidNode {
		// Ordered lowerings have no tag management to verify.
		r.Findings = append(r.Findings, Finding{
			Pass: "barrier", Severity: SevInfo, Block: -1, Node: dfg.InvalidNode,
			Msg: "untagged (ordered) graph: tag passes skipped",
		})
	} else {
		r.Findings = append(r.Findings, VerifyBarriers(g)...)
		tags, fs := TagSafety(g)
		r.Tags = tags
		r.Findings = append(r.Findings, fs...)
	}
	if p != nil {
		r.Findings = append(r.Findings, CheckRaces(p)...)
	}
	return r
}
