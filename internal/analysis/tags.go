package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dfg"
)

// TagSafety computes each block's minimum tag requirement from the graph's
// allocate structure and predicts which bounded-tagging configurations can
// deadlock (the paper's Fig. 11, statically).
//
// The analysis builds the "holds" graph: block B holds its own tag while an
// allocate instruction placed in B requests a tag of space S, so a chain
// root -> L1 -> ... -> Lk of nested blocks needs k+1 concurrently live tags
// before the innermost context can run. A tail-recursive block additionally
// cannot free its tag before the backedge allocation for the successor
// context is granted (the compiler parks the free behind the grant), which
// costs one more tag at the end of the chain. Under PolicyGlobalBounded all
// of these draw from one shared pool, so:
//
//   - k < deepest chain requirement  =>  certain deadlock once the chain is
//     entered (WillDeadlock);
//   - a tail-recursive block that also allocates into other blocks can
//     spawn successor contexts that each demand nested tags, so demand is
//     not bounded by any static chain and no finite k is provably safe
//     (MayDeadlock) — this is exactly the dmv configuration Fig. 11 shows
//     deadlocking at GlobalBounded(8);
//   - otherwise Safe.
//
// Under PolicyTyr each block has its own pool, and the per-block minimum is
// 1, or 2 for tail-recursive blocks (Lemma 2's reserved tag).
func TagSafety(g *dfg.Graph) (*TagReport, []Finding) {
	r := &TagReport{Graph: g.Name}
	n := len(g.Blocks)

	allocInto := make([]map[dfg.BlockID]bool, n) // B -> spaces allocated from B
	selfAlloc := make([]bool, n)
	for i := range g.Nodes {
		nd := &g.Nodes[i]
		if nd.Op != dfg.OpAllocate {
			continue
		}
		if nd.Space == nd.Block {
			selfAlloc[nd.Block] = true
			continue
		}
		if allocInto[nd.Block] == nil {
			allocInto[nd.Block] = make(map[dfg.BlockID]bool)
		}
		allocInto[nd.Block][nd.Space] = true
	}

	// Nesting depth along the holds graph. The allocate edges follow loop
	// nesting and the (acyclic) call graph, so a DFS terminates; a cycle
	// would mean recursive allocation, which we flag instead of looping.
	depth := make([]int, n)
	state := make([]uint8, n) // 0 unvisited, 1 on stack, 2 done
	var findings []Finding
	var walk func(b dfg.BlockID, d int)
	walk = func(b dfg.BlockID, d int) {
		if state[b] == 1 {
			findings = append(findings, Finding{
				Pass: "tags", Severity: SevError, Block: b, Node: dfg.InvalidNode,
				Msg: fmt.Sprintf("allocation cycle through block %q: contexts allocate into their own ancestry, which no finite tag pool satisfies", g.Blocks[b].Name),
			})
			return
		}
		if d <= depth[b] {
			return
		}
		depth[b] = d
		state[b] = 1
		targets := make([]dfg.BlockID, 0, len(allocInto[b]))
		for t := range allocInto[b] {
			targets = append(targets, t)
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
		for _, t := range targets {
			walk(t, d+1)
		}
		state[b] = 2
	}
	walk(0, 1)

	for b := 0; b < n; b++ {
		blk := &g.Blocks[b]
		info := BlockTags{
			Block:         dfg.BlockID(b),
			Name:          blk.Name,
			TailRecursive: blk.TailRecursive,
			Depth:         depth[b],
			MinLocalTags:  1,
		}
		if blk.TailRecursive {
			info.MinLocalTags = 2
		}
		need := depth[b]
		if selfAlloc[b] {
			need++
		}
		if need > r.MinGlobalTags {
			r.MinGlobalTags = need
		}
		for t := range allocInto[b] {
			info.AllocatesInto = append(info.AllocatesInto, t)
		}
		sort.Slice(info.AllocatesInto, func(i, j int) bool { return info.AllocatesInto[i] < info.AllocatesInto[j] })
		if blk.TailRecursive && len(info.AllocatesInto) > 0 && !r.Unbounded {
			r.Unbounded = true
			r.UnboundedVia = dfg.BlockID(b)
		}
		r.Blocks = append(r.Blocks, info)
	}

	for _, info := range r.Blocks {
		if info.Depth == 0 {
			continue // unreachable from root; nothing allocates into it
		}
		findings = append(findings, Finding{
			Pass: "tags", Severity: SevInfo, Block: info.Block, Node: dfg.InvalidNode,
			Msg: fmt.Sprintf("block %q needs >= %d local tags (depth %d in the holds chain)",
				info.Name, info.MinLocalTags, info.Depth),
		})
	}
	if r.Unbounded {
		via := &g.Blocks[r.UnboundedVia]
		findings = append(findings, Finding{
			Pass: "tags", Severity: SevWarning, Block: r.UnboundedVia, Node: dfg.InvalidNode,
			Msg: fmt.Sprintf("tail-recursive block %q allocates into nested blocks: under a bounded global tag pool its successor contexts compete with its children for tags, and no pool size is provably deadlock-free (Fig. 11)", via.Name),
		})
	}
	return r, findings
}

// BlockTags is the per-block result of the tag-safety analysis.
type BlockTags struct {
	Block         dfg.BlockID
	Name          string
	TailRecursive bool
	// MinLocalTags is the smallest per-block pool under PolicyTyr that
	// guarantees forward progress: 1, or 2 for tail-recursive blocks
	// (Lemma 2's reserved tag for the backedge).
	MinLocalTags int
	// Depth is the block's position in the holds chain (root = 1): how
	// many tags are concurrently live while one context of it runs.
	Depth int
	// AllocatesInto lists the other tag spaces this block allocates into.
	AllocatesInto []dfg.BlockID
}

// TagReport is the whole-graph result of the tag-safety analysis.
type TagReport struct {
	Graph  string
	Blocks []BlockTags
	// MinGlobalTags is the smallest PolicyGlobalBounded pool that can
	// possibly complete the program: the deepest holds chain, plus one
	// for a tail-recursive leaf whose free waits on its backedge grant.
	MinGlobalTags int
	// Unbounded marks graphs where a tail-recursive block allocates into
	// nested blocks; no finite global pool is provably safe for them.
	Unbounded    bool
	UnboundedVia dfg.BlockID
}

// Verdict classifies one GlobalBounded(k) configuration.
type Verdict uint8

const (
	// VerdictSafe: the analysis finds no tag-induced deadlock.
	VerdictSafe Verdict = iota
	// VerdictMayDeadlock: demand is not statically bounded (tail-recursive
	// block spawning nested contexts); the configuration can deadlock
	// depending on scheduling and trip counts.
	VerdictMayDeadlock
	// VerdictWillDeadlock: the pool is smaller than the deepest holds
	// chain; the program deadlocks as soon as that chain is entered.
	VerdictWillDeadlock
)

func (v Verdict) String() string {
	switch v {
	case VerdictSafe:
		return "safe"
	case VerdictMayDeadlock:
		return "may-deadlock"
	}
	return "will-deadlock"
}

// GlobalBounded predicts the outcome of running the graph under
// PolicyGlobalBounded with a pool of k tags.
func (r *TagReport) GlobalBounded(k int) Verdict {
	if k < r.MinGlobalTags {
		return VerdictWillDeadlock
	}
	if r.Unbounded {
		return VerdictMayDeadlock
	}
	return VerdictSafe
}

// String renders the tag report for CLI consumption.
func (r *TagReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tag safety (%s):\n", r.Graph)
	for _, info := range r.Blocks {
		tr := ""
		if info.TailRecursive {
			tr = ", tail-recursive"
		}
		fmt.Fprintf(&b, "  blk%d %-16q depth %d, min local tags %d%s\n",
			info.Block, info.Name, info.Depth, info.MinLocalTags, tr)
	}
	fmt.Fprintf(&b, "  global bounded pool: needs >= %d tags", r.MinGlobalTags)
	if r.Unbounded {
		fmt.Fprintf(&b, "; no finite pool provably safe (tail-recursive blk%d spawns nested contexts)", r.UnboundedVia)
	}
	b.WriteString("\n")
	return b.String()
}
