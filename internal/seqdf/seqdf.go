// Package seqdf models the sequential-dataflow baseline (WaveScalar-like;
// Sec. II-C of the paper).
//
// Sequential dataflow executes hyperblocks in the von Neumann block order:
// within the current block the dataflow firing rule extracts instruction-
// level parallelism (bounded by issue width), but entering the next block
// requires advancing the wave number of every live value, and the wave
// number itself depends on the control flow of all earlier blocks — so
// blocks are globally serialized, like a wide out-of-order window that
// cannot cross block boundaries.
//
// The model is trace-driven: it rides the reference interpreter's CostModel
// hook (see DESIGN.md §3/§5 for why this substitution is faithful). For
// each dynamic block (loop iteration or function body segment) it computes
//
//	cycles = max(dependence height, ceil(instructions / issueWidth))
//	       + ceil(liveValues / issueWidth)   // the WaveAdvance overhead
//
// and counts one WaveAdvance instruction per live value at each boundary.
// Live state is the block's peak internal parallelism plus the values
// carried across the boundary.
package seqdf

import (
	"fmt"

	"repro/internal/cancel"
	"repro/internal/mem"
	"repro/internal/prog"
	"repro/internal/trace"
)

// StatePoint is one sample of the live-state trace.
type StatePoint struct {
	Cycle int64
	Live  int64
}

// Result reports one run.
type Result struct {
	Completed bool
	Cycles    int64
	Fired     int64 // dynamic instructions incl. WaveAdvances
	Waves     int64 // block boundaries crossed
	Ret       int64
	PeakLive  int64
	MeanLive  float64
	IPCHist   map[int]int64
	Trace     []StatePoint
	Stats     prog.Stats
	// Note records the machine configuration that produced the run.
	Note string
}

// IPC returns mean instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Fired) / float64(r.Cycles)
}

// Config parameterizes a run.
type Config struct {
	Args       []int64
	MaxSteps   int64
	IssueWidth int // default 128
	// LoadLatency is the cycles a load takes (sequential dataflow hides
	// it only within the current block's window).
	LoadLatency int64
	// Memory, when non-nil, routes every load and store through a
	// memory-hierarchy timing model (see internal/cache); its per-access
	// latency supersedes LoadLatency. Nil keeps the ideal flat memory.
	Memory mem.AccessModel
	// TracePoints caps the live-state trace length (0 = default 4096).
	TracePoints int
	// Tracer, when non-nil, receives one KindFire event per dynamic
	// instruction (Val = instruction class) and a KindBoundary event per
	// hyperblock boundary / wave advance (Val = carried live values).
	// There is no graph, so events carry trace.NoNode.
	Tracer *trace.Recorder
	// Stop, when non-nil, is polled at every dynamic instruction; once
	// stopped the run returns cancel.ErrStopped promptly. Nil changes
	// nothing.
	Stop *cancel.Flag
}

type model struct {
	width   int64
	loadLat int64

	// memory is the attached hierarchy model; pendingMem holds the latency
	// of the access announced via Mem, consumed by the next Instr call.
	memory     mem.AccessModel
	pendingMem int64

	clock    int64 // committed cycles of completed blocks
	n        int64 // instructions in the current block
	maxReady int64 // dependence height (absolute)
	// levels counts instructions per ready cycle within the current
	// block, indexed by r - clock - 1 (every r lands after the committed
	// clock, so the block's dependence levels form a dense prefix). The
	// used prefix is zeroed at each boundary, replacing the seed's
	// per-block map churn.
	levels  []int64
	peakPar int64

	instrs int64 // total, incl. WaveAdvances
	waves  int64

	sumLive  int64
	peakLive int64

	tracePts    []StatePoint
	tracePoints int
	traceStride int64
	winMax      int64
	winMaxCycle int64
	winValid    bool

	ipcHist []int64 // indexed by block IPC, capped at width

	rec *trace.Recorder
}

//tyr:hotpath
func (m *model) Instr(class prog.InstrClass, deps ...int64) int64 {
	if m.rec != nil {
		m.rec.Record(trace.Event{Cycle: m.clock, Kind: trace.KindFire,
			Node: trace.NoNode, Src: trace.NoNode, Val: int64(class)})
	}
	r := m.clock
	for _, d := range deps {
		if d > r {
			r = d
		}
	}
	r++
	if m.memory != nil {
		// The block's window hides latency of independent accesses: the
		// extra cycles extend this access's ready time, not the clock.
		if (class == prog.ClassLoad || class == prog.ClassStore) && m.pendingMem > 1 {
			r += m.pendingMem - 1
		}
		m.pendingMem = 0
	} else if class == prog.ClassLoad && m.loadLat > 1 {
		r += m.loadLat - 1
	}
	m.n++
	m.instrs++
	if r > m.maxReady {
		m.maxReady = r
	}
	idx := r - m.clock - 1
	for int64(len(m.levels)) <= idx {
		m.levels = append(m.levels, 0)
	}
	m.levels[idx]++
	if m.levels[idx] > m.peakPar {
		m.peakPar = m.levels[idx]
	}
	return r
}

// Mem (prog.MemModel) routes the upcoming load/store through the attached
// hierarchy; the resulting latency is charged by the following Instr call.
//
//tyr:hotpath
func (m *model) Mem(kind mem.AccessKind, region int, addr int64) {
	if m.memory != nil {
		m.pendingMem = m.memory.Access(m.clock, kind, region, addr)
	}
}

//tyr:hotpath
func ceilDiv(a, b int64) int64 {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

//tyr:hotpath
func (m *model) Boundary(_ prog.BoundaryKind, live int) {
	finish := m.maxReady
	if wlimit := m.clock + ceilDiv(m.n, m.width); wlimit > finish {
		finish = wlimit
	}
	waveCost := ceilDiv(int64(live), m.width)
	blockCycles := finish - m.clock + waveCost
	blockInstrs := m.n + int64(live) // WaveAdvance per live value
	m.instrs += int64(live)
	m.waves++

	// Live state during the block: internal peak parallelism (each ready
	// instruction holds its operand tokens) plus the carried values that
	// must ride along to stay at the right wave number.
	blockLive := m.peakPar + int64(live)
	if blockLive > m.peakLive {
		m.peakLive = blockLive
	}
	m.sumLive += blockLive * maxI64(blockCycles, 1)

	if blockCycles > 0 {
		ipc := int(blockInstrs / maxI64(blockCycles, 1))
		if ipc > int(m.width) {
			ipc = int(m.width)
		}
		m.ipcHist[ipc] += blockCycles
	}

	// Zero the block's used dependence levels (indices are relative to
	// the clock the block started at).
	used := m.maxReady - m.clock
	if used > int64(len(m.levels)) {
		used = int64(len(m.levels))
	}
	for i := int64(0); i < used; i++ {
		m.levels[i] = 0
	}

	m.clock = finish + waveCost
	m.n = 0
	m.maxReady = m.clock
	m.peakPar = 0
	if m.rec != nil {
		m.rec.Record(trace.Event{Cycle: m.clock, Kind: trace.KindBoundary,
			Node: trace.NoNode, Src: trace.NoNode, Val: int64(live)})
	}
	m.sample(blockLive)
}

// sample maintains the live-state trace with max-preserving decimation:
// each stride window contributes its peak-live sample.
//
//tyr:hotpath
func (m *model) sample(live int64) {
	if m.tracePoints <= 0 {
		return
	}
	if !m.winValid || live > m.winMax {
		m.winMax, m.winMaxCycle = live, m.clock
		m.winValid = true
	}
	if n := len(m.tracePts); n > 0 && m.clock-m.tracePts[n-1].Cycle < m.traceStride {
		return
	}
	m.emitWindow()
}

// emitWindow appends the pending window's peak. Empty blocks leave the
// clock unchanged, so a window landing on the previous point's cycle
// merges into it instead of breaking monotonicity.
//
//tyr:hotpath
func (m *model) emitWindow() {
	if !m.winValid {
		return
	}
	m.winValid = false
	if n := len(m.tracePts); n > 0 && m.winMaxCycle <= m.tracePts[n-1].Cycle {
		if m.winMax > m.tracePts[n-1].Live {
			m.tracePts[n-1].Live = m.winMax
		}
		return
	}
	m.tracePts = append(m.tracePts, StatePoint{Cycle: m.winMaxCycle, Live: m.winMax})
	if len(m.tracePts) >= m.tracePoints {
		m.tracePts = decimatePoints(m.tracePts)
		m.traceStride *= 2
	}
}

// flush closes the trace at end of run and re-imposes the cap.
func (m *model) flush() {
	if m.tracePoints <= 0 {
		return
	}
	m.emitWindow()
	if n := len(m.tracePts); n == 0 || m.tracePts[n-1].Cycle < m.clock {
		m.tracePts = append(m.tracePts, StatePoint{Cycle: m.clock, Live: 0})
	}
	for len(m.tracePts) > m.tracePoints && len(m.tracePts) >= 3 {
		m.tracePts = decimatePoints(m.tracePts)
		m.traceStride *= 2
	}
}

// decimatePoints halves a trace by merging adjacent pairs, keeping each
// pair's higher-live point. The final point is never merged away.
func decimatePoints(pts []StatePoint) []StatePoint {
	if len(pts) < 3 {
		return pts
	}
	last := pts[len(pts)-1]
	body := pts[:len(pts)-1]
	kept := pts[:0]
	for i := 0; i < len(body); i += 2 {
		p := body[i]
		if i+1 < len(body) && body[i+1].Live > p.Live {
			p = body[i+1]
		}
		kept = append(kept, p)
	}
	return append(kept, last)
}

//tyr:hotpath
func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Run executes the program under the sequential-dataflow cost model.
func Run(p *prog.Program, im *mem.Image, cfg Config) (Result, error) {
	width := int64(cfg.IssueWidth)
	if width == 0 {
		width = 128
	}
	m := &model{
		width:       width,
		loadLat:     cfg.LoadLatency,
		memory:      cfg.Memory,
		ipcHist:     make([]int64, width+1),
		tracePoints: cfg.TracePoints,
		traceStride: 1,
		rec:         cfg.Tracer,
	}
	if m.tracePoints == 0 {
		m.tracePoints = 4096
	}
	res, err := prog.Run(p, im, prog.RunConfig{Args: cfg.Args, MaxSteps: cfg.MaxSteps, Model: m, Stop: cfg.Stop})
	if err != nil {
		return Result{}, err
	}
	m.Boundary(prog.BoundaryCallExit, 0) // flush the final block
	m.flush()

	ipc := make(map[int]int64)
	for k, v := range m.ipcHist {
		if v != 0 {
			ipc[k] = v
		}
	}
	out := Result{
		Completed: true,
		Cycles:    m.clock,
		Fired:     m.instrs,
		Waves:     m.waves,
		Ret:       res.Ret,
		PeakLive:  m.peakLive,
		IPCHist:   ipc,
		Trace:     m.tracePts,
		Stats:     res.Stats,
		Note:      fmt.Sprintf("hyperblock waves, width=%d", width),
	}
	if m.clock > 0 {
		out.MeanLive = float64(m.sumLive) / float64(m.clock)
	}
	return out, nil
}
