package seqdf

import (
	"errors"
	"testing"

	"repro/internal/cancel"
	"repro/internal/mem"
	"repro/internal/prog"
)

func sumProgram(n int64) *prog.Program {
	p := prog.NewProgram("sum", "main")
	p.AddFunc("main", nil, prog.V("s"),
		prog.ForRange("L", "i", prog.C(0), prog.C(n), []prog.LoopVar{prog.LV("s", prog.C(0))},
			prog.Set("s", prog.Add(prog.V("s"), prog.V("i"))),
		),
	)
	return p
}

func TestStopFlagPreArmed(t *testing.T) {
	f := &cancel.Flag{}
	f.Stop()
	_, err := Run(sumProgram(100), mem.NewImage(), Config{Stop: f})
	if !errors.Is(err, cancel.ErrStopped) {
		t.Fatalf("err = %v, want cancel.ErrStopped", err)
	}
}

func TestStopFlagNilAndUnarmedAreNeutral(t *testing.T) {
	base, err := Run(sumProgram(100), mem.NewImage(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	withFlag, err := Run(sumProgram(100), mem.NewImage(), Config{Stop: &cancel.Flag{}})
	if err != nil {
		t.Fatal(err)
	}
	if base.Cycles != withFlag.Cycles || base.Ret != withFlag.Ret {
		t.Errorf("unarmed flag changed the run: %+v vs %+v", base, withFlag)
	}
}
