package seqdf

import (
	"testing"

	"repro/internal/prog"
	"repro/internal/vn"
)

// wideProgram has abundant instruction-level parallelism within each
// iteration (independent multiply trees), which sequential dataflow can
// exploit inside a block.
func wideProgram(n int64) *prog.Program {
	p := prog.NewProgram("wide", "main")
	p.DeclareMem("out", int(n))
	p.AddFunc("main", nil, prog.C(0),
		prog.ForRange("L", "i", prog.C(0), prog.C(n), nil,
			prog.LetS("a", prog.Mul(prog.V("i"), prog.C(3))),
			prog.LetS("b", prog.Mul(prog.V("i"), prog.C(5))),
			prog.LetS("c", prog.Mul(prog.V("i"), prog.C(7))),
			prog.LetS("d", prog.Mul(prog.V("i"), prog.C(11))),
			prog.St("out", prog.V("i"), prog.Add(prog.Add(prog.V("a"), prog.V("b")), prog.Add(prog.V("c"), prog.V("d")))),
		),
	)
	return p
}

func TestSeqDFFasterThanVNSlowerThanWidth(t *testing.T) {
	p := wideProgram(200)
	if err := prog.Check(p); err != nil {
		t.Fatal(err)
	}
	sd, err := Run(p, prog.DefaultImage(p), Config{IssueWidth: 128})
	if err != nil {
		t.Fatal(err)
	}
	vnRes, err := vn.Run(p, prog.DefaultImage(p), vn.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sd.Cycles >= vnRes.Cycles {
		t.Errorf("seqdf (%d cycles) not faster than vN (%d)", sd.Cycles, vnRes.Cycles)
	}
	// But block serialization keeps it far from perfect scaling: at
	// least one cycle per block boundary.
	if sd.Cycles < sd.Waves {
		t.Errorf("cycles %d below wave count %d", sd.Cycles, sd.Waves)
	}
	if sd.IPC() > 128 {
		t.Errorf("IPC %.1f exceeds issue width", sd.IPC())
	}
}

func TestSeqDFCountsWaveAdvances(t *testing.T) {
	p := wideProgram(50)
	sd, err := Run(p, prog.DefaultImage(p), Config{})
	if err != nil {
		t.Fatal(err)
	}
	vnRes, err := vn.Run(p, prog.DefaultImage(p), vn.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// WaveAdvance overhead: seqdf executes strictly more dynamic
	// instructions than the raw program.
	if sd.Fired <= vnRes.Fired {
		t.Errorf("seqdf fired %d, want more than raw %d (WaveAdvances)", sd.Fired, vnRes.Fired)
	}
	if sd.Waves == 0 {
		t.Error("no waves recorded")
	}
}

func TestSeqDFWidthSensitivityWithinBlock(t *testing.T) {
	p := wideProgram(100)
	narrow, err := Run(p, prog.DefaultImage(p), Config{IssueWidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Run(p, prog.DefaultImage(p), Config{IssueWidth: 128})
	if err != nil {
		t.Fatal(err)
	}
	if wide.Cycles >= narrow.Cycles {
		t.Errorf("width 128 (%d cycles) not faster than width 1 (%d)", wide.Cycles, narrow.Cycles)
	}
	// Width-1 seqdf degenerates to at least vN speed or slower (it pays
	// WaveAdvances serially too).
	vnRes, err := vn.Run(p, prog.DefaultImage(p), vn.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Cycles < vnRes.Cycles {
		t.Errorf("width-1 seqdf (%d) beat vN (%d); WaveAdvance overhead lost", narrow.Cycles, vnRes.Cycles)
	}
}

func TestSeqDFBlockSerializationLimitsParallelism(t *testing.T) {
	// A loop whose iterations are independent but tiny: seqdf cannot
	// overlap blocks, so time grows linearly with iterations regardless
	// of width.
	mk := func(n int64) *prog.Program {
		p := prog.NewProgram("serial", "main")
		p.DeclareMem("out", int(n))
		p.AddFunc("main", nil, prog.C(0),
			prog.ForRange("L", "i", prog.C(0), prog.C(n), nil,
				prog.St("out", prog.V("i"), prog.V("i")),
			),
		)
		return p
	}
	r1, err := Run(mk(100), prog.DefaultImage(mk(100)), Config{IssueWidth: 512})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(mk(200), prog.DefaultImage(mk(200)), Config{IssueWidth: 512})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(r2.Cycles) / float64(r1.Cycles)
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("doubling iterations scaled cycles by %.2fx, want ~2x (block-serial)", ratio)
	}
}

func TestSeqDFStateIncludesCarriedValues(t *testing.T) {
	p := wideProgram(50)
	sd, err := Run(p, prog.DefaultImage(p), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sd.PeakLive <= 0 || sd.MeanLive <= 0 {
		t.Errorf("state stats empty: peak %d mean %f", sd.PeakLive, sd.MeanLive)
	}
	vnRes, err := vn.Run(p, prog.DefaultImage(p), vn.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sd.PeakLive < vnRes.PeakLive {
		t.Errorf("seqdf peak %d below vN %d; in-block parallelism should add state", sd.PeakLive, vnRes.PeakLive)
	}
}

func TestSeqDFResultCorrect(t *testing.T) {
	p := prog.NewProgram("sum", "main")
	p.AddFunc("main", nil, prog.V("s"),
		prog.ForRange("L", "i", prog.C(0), prog.C(10), []prog.LoopVar{prog.LV("s", prog.C(0))},
			prog.Set("s", prog.Add(prog.V("s"), prog.V("i"))),
		),
	)
	if err := prog.Check(p); err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, prog.DefaultImage(p), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 45 {
		t.Errorf("ret = %d, want 45", res.Ret)
	}
}
