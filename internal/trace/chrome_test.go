package trace_test

// External test package: these tests drive real engine runs through the
// harness, which trace itself cannot import (core imports trace).

import (
	"bytes"
	"testing"

	"repro/internal/apps"
	"repro/internal/harness"
	"repro/internal/trace"
)

// record runs one tiny-scale workload on one system with a fresh recorder
// attached and returns the recorder plus the run's cycle count.
func record(t *testing.T, appName, sys string) (*trace.Recorder, int64) {
	t.Helper()
	app := apps.Find(apps.Suite(apps.ScaleTiny), appName)
	if app == nil {
		t.Fatalf("unknown app %q", appName)
	}
	rec := trace.NewRecorder(0)
	rs, err := harness.Run(app, sys, harness.SysConfig{
		IssueWidth: 128, Tags: 64, Tracer: rec,
	})
	if err != nil {
		t.Fatalf("%s on %s: %v", appName, sys, err)
	}
	if !rs.Completed {
		t.Fatalf("%s on %s did not complete", appName, sys)
	}
	return rec, rs.Cycles
}

func TestExportChromeValidates(t *testing.T) {
	for _, tc := range []struct{ app, sys string }{
		{"dmv", harness.SysTyr},
		{"smv", harness.SysUnordered},
		{"dmv", harness.SysOrdered},
		{"dmv", harness.SysVN},
		{"dmv", harness.SysSeqDF},
	} {
		t.Run(tc.app+"/"+tc.sys, func(t *testing.T) {
			rec, _ := record(t, tc.app, tc.sys)
			if rec.Len() == 0 {
				t.Fatal("no events recorded")
			}
			var buf bytes.Buffer
			if err := trace.ExportChrome(&buf, rec); err != nil {
				t.Fatalf("ExportChrome: %v", err)
			}
			if err := trace.ValidateChromeJSON(buf.Bytes()); err != nil {
				t.Fatalf("exported trace does not validate: %v", err)
			}
		})
	}
}

func TestValidateChromeJSONRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",
		"not json",
		"{}",
		`{"traceEvents": []}`,
		`{"traceEvents": [{"ph": "X"}]}`,
	} {
		if err := trace.ValidateChromeJSON([]byte(bad)); err == nil {
			t.Errorf("ValidateChromeJSON(%q) = nil, want error", bad)
		}
	}
}
