// Package trace is the event layer shared by every simulated architecture:
// a zero-allocation-on-hot-path recorder of fixed-size event records that
// the engines emit into behind their Config.Tracer hook.
//
// The stream captures the dynamic behavior the paper's argument is about —
// token emission and delivery, instruction firing, tag allocate/free/
// changeTag, allocate park/wake (the Fig. 11 starvation signal), join
// arrivals, and memory operations — each stamped with the cycle, node,
// block, and tag. Three consumers are built on top:
//
//   - ExportChrome (chrome.go): Chrome trace-event / Perfetto JSON, one
//     track per concurrent block plus tag-pool occupancy counter tracks;
//   - Profile (profile.go): a critical-path profiler that replays the
//     recorded dependency edges to find the longest fire chain and
//     attribute every execution cycle to a node, block, and opcode;
//   - FireCounts: per-node fire counts for the DFG heatmap (dfg.DotHeat).
//
// The recorder is a ring buffer of fixed-size records: recording never
// allocates after construction, and when the buffer wraps the oldest
// events are dropped (Dropped reports how many) — the hot path stays O(1)
// regardless of run length.
package trace

import (
	"fmt"

	"repro/internal/dfg"
)

// Kind classifies one event.
type Kind uint8

const (
	// KindFire: a dynamic instruction instance executed.
	KindFire Kind = iota
	// KindEmit: a node produced a token (queued for next-cycle delivery).
	KindEmit
	// KindDeliver: a token arrived at its destination's token store.
	KindDeliver
	// KindJoinArrive: a KindDeliver whose destination is a join — the
	// synchronization arrivals the free barrier is built from.
	KindJoinArrive
	// KindTagAlloc: a tag was granted to a new context (Val = tags in use
	// in the target space afterwards — the counter-track signal).
	KindTagAlloc
	// KindTagFree: a tag returned to its pool (Val = tags in use after).
	KindTagFree
	// KindChangeTag: a token crossed a transfer point onto another
	// context's tag (Val holds the destination tag).
	KindChangeTag
	// KindPark: an allocate was starved of tags and parked — the paper's
	// Fig. 11 starvation event (Val = tags available when it parked).
	KindPark
	// KindWake: a parked allocate re-entered the ready flow.
	KindWake
	// KindMemLoad: a load accessed memory (Val = address).
	KindMemLoad
	// KindMemStore: a store accessed memory (Val = address).
	KindMemStore
	// KindBoundary: a cost-model block boundary (vN / seqdf engines;
	// Val = live values carried across).
	KindBoundary
	// KindCacheHit: a memory access hit in the hierarchy (Port = level,
	// 1 = L1, 2 = L2; Val = flat word address).
	KindCacheHit
	// KindCacheMiss: a memory access missed at a level (Port = level,
	// Val = flat word address). An access missing both levels records one
	// miss per level.
	KindCacheMiss
	// KindWriteback: a dirty line was evicted from a level (Port = level
	// it left, Val = the line's flat word address).
	KindWriteback

	numKinds = int(KindWriteback) + 1
)

func (k Kind) String() string {
	switch k {
	case KindFire:
		return "fire"
	case KindEmit:
		return "emit"
	case KindDeliver:
		return "deliver"
	case KindJoinArrive:
		return "join-arrive"
	case KindTagAlloc:
		return "tag-alloc"
	case KindTagFree:
		return "tag-free"
	case KindChangeTag:
		return "change-tag"
	case KindPark:
		return "park"
	case KindWake:
		return "wake"
	case KindMemLoad:
		return "mem-load"
	case KindMemStore:
		return "mem-store"
	case KindBoundary:
		return "boundary"
	case KindCacheHit:
		return "cache-hit"
	case KindCacheMiss:
		return "cache-miss"
	case KindWriteback:
		return "writeback"
	}
	return "?"
}

// NoNode marks events with no associated static node (engine-level events,
// or the vN/seqdf cost models which have no compiled graph).
const NoNode int32 = -1

// Event is one fixed-size trace record. Field meaning varies slightly by
// Kind (documented on the Kind constants); Node/Block/Tag are the common
// stamps. For Emit/Deliver/JoinArrive, Node is the destination, Src the
// producer, and Port the destination input port.
type Event struct {
	Seq   uint64 // global sequence number, stamped by Record
	Cycle int64
	Kind  Kind
	Port  int16
	Node  int32
	Src   int32
	Block int32
	Tag   uint64
	Val   int64
}

func (e Event) String() string {
	return fmt.Sprintf("ev#%d c%d %s n%d blk%d tag=%#x val=%d", e.Seq, e.Cycle, e.Kind, e.Node, e.Block, e.Tag, e.Val)
}

// NodeMeta names one static node for consumers.
type NodeMeta struct {
	Label string
	Op    string
	Block int32
}

// Meta carries the static context a raw event stream needs to be readable:
// program and system names plus the block/node tables of the compiled
// graph (empty for the graph-less vN and seqdf cost models).
type Meta struct {
	Program string
	System  string
	Blocks  []string
	Nodes   []NodeMeta
}

// NodeName returns a display name for a node ID, falling back to "n<id>".
func (m *Meta) NodeName(node int32) string {
	if node >= 0 && int(node) < len(m.Nodes) {
		if l := m.Nodes[node].Label; l != "" {
			return l
		}
		return fmt.Sprintf("n%d %s", node, m.Nodes[node].Op)
	}
	return fmt.Sprintf("n%d", node)
}

// BlockName returns a display name for a block ID.
func (m *Meta) BlockName(block int32) string {
	if block >= 0 && int(block) < len(m.Blocks) {
		return m.Blocks[block]
	}
	return fmt.Sprintf("block%d", block)
}

// MetaFromGraph builds the Meta tables from a compiled graph.
func MetaFromGraph(program, system string, g *dfg.Graph) Meta {
	m := Meta{Program: program, System: system}
	for i := range g.Blocks {
		m.Blocks = append(m.Blocks, g.Blocks[i].Name)
	}
	for i := range g.Nodes {
		n := &g.Nodes[i]
		op := n.Op.String()
		if n.Op == dfg.OpBin {
			op = n.Bin.String()
		}
		m.Nodes = append(m.Nodes, NodeMeta{Label: n.Label, Op: op, Block: int32(n.Block)})
	}
	return m
}

// DefaultCapacity is the recorder's default ring size (events).
const DefaultCapacity = 1 << 20

// Recorder is a fixed-capacity ring buffer of events. Construct with
// NewRecorder; the zero value is not usable. Recording is O(1) and
// allocation-free; when the ring is full the oldest events are overwritten.
type Recorder struct {
	meta Meta
	buf  []Event
	next int    // next write index
	full bool   // the ring has wrapped at least once
	seq  uint64 // events recorded so far (== next Seq stamp)
}

// NewRecorder allocates a recorder holding up to capacity events
// (DefaultCapacity if capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// SetMeta attaches the static context; engines call this before running.
func (r *Recorder) SetMeta(m Meta) { r.meta = m }

// Meta returns the attached static context.
func (r *Recorder) Meta() *Meta { return &r.meta }

// Record appends one event, stamping its sequence number.
func (r *Recorder) Record(e Event) {
	e.Seq = r.seq
	r.seq++
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Seq returns the number of events recorded so far — the sequence number
// the next event will get, and the stamp sanitizer diagnostics use to link
// a finding to the most recent trace event.
func (r *Recorder) Seq() uint64 { return r.seq }

// Len returns how many events are currently retained.
func (r *Recorder) Len() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (r *Recorder) Dropped() uint64 {
	return r.seq - uint64(r.Len())
}

// Events returns the retained events, oldest first, as a fresh slice.
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, r.Len())
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	return append(out, r.buf[:r.next]...)
}

// FromEvents rebuilds a read-only recorder holding exactly evs (oldest
// first) under meta — the consumer-side inverse of Events(), used to
// re-export and profile captured streams (the tyrd flight recorder stores
// raw events so the critical-path profiler can replay dependency edges).
// The sequence counter resumes after the last event's stamp, so Dropped
// reflects the original ring's loss. Do not Record into the result.
func FromEvents(meta Meta, evs []Event) *Recorder {
	r := &Recorder{meta: meta, buf: append([]Event(nil), evs...)}
	if len(r.buf) == 0 {
		r.buf = make([]Event, 1)
		return r
	}
	r.full = true
	r.seq = evs[len(evs)-1].Seq + 1
	return r
}

// Reset clears the recorder for reuse, keeping its buffer and meta.
func (r *Recorder) Reset() {
	r.next, r.full, r.seq = 0, false, 0
}

// CountByKind tallies retained events per kind.
func (r *Recorder) CountByKind() map[string]int {
	var counts [numKinds]int
	for _, e := range r.Events() {
		counts[e.Kind]++
	}
	out := make(map[string]int)
	for k, c := range counts {
		if c > 0 {
			out[Kind(k).String()] = c
		}
	}
	return out
}

// FireCounts tallies fire events per static node (for the DFG heatmap).
// nNodes sizes the result; events for out-of-range nodes are ignored.
func FireCounts(r *Recorder, nNodes int) []int64 {
	counts := make([]int64, nNodes)
	if r == nil {
		return counts
	}
	for _, e := range r.Events() {
		if e.Kind == KindFire && e.Node >= 0 && int(e.Node) < nNodes {
			counts[e.Node]++
		}
	}
	return counts
}
