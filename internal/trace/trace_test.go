package trace

import (
	"testing"
)

func TestRecorderSeqAndLen(t *testing.T) {
	r := NewRecorder(8)
	if r.Len() != 0 || r.Seq() != 0 || r.Dropped() != 0 {
		t.Fatalf("fresh recorder not empty: len=%d seq=%d dropped=%d", r.Len(), r.Seq(), r.Dropped())
	}
	for i := 0; i < 5; i++ {
		r.Record(Event{Cycle: int64(i), Kind: KindFire, Node: int32(i)})
	}
	if r.Len() != 5 || r.Seq() != 5 || r.Dropped() != 0 {
		t.Fatalf("after 5 records: len=%d seq=%d dropped=%d", r.Len(), r.Seq(), r.Dropped())
	}
	evs := r.Events()
	for i, e := range evs {
		if e.Seq != uint64(i) || e.Cycle != int64(i) {
			t.Fatalf("event %d: seq=%d cycle=%d", i, e.Seq, e.Cycle)
		}
	}
}

func TestRecorderWrapDropsOldest(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{Cycle: int64(i), Kind: KindEmit})
	}
	if r.Len() != 4 {
		t.Fatalf("len=%d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped=%d, want 6", r.Dropped())
	}
	evs := r.Events()
	// Oldest-first: the four most recent events are 6,7,8,9.
	for i, e := range evs {
		if want := uint64(6 + i); e.Seq != want {
			t.Fatalf("events()[%d].Seq=%d, want %d", i, e.Seq, want)
		}
	}
}

func TestRecorderReset(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 7; i++ {
		r.Record(Event{Kind: KindFire})
	}
	r.Reset()
	if r.Len() != 0 || r.Seq() != 0 || r.Dropped() != 0 {
		t.Fatalf("after reset: len=%d seq=%d dropped=%d", r.Len(), r.Seq(), r.Dropped())
	}
	r.Record(Event{Kind: KindFire})
	if got := r.Events(); len(got) != 1 || got[0].Seq != 0 {
		t.Fatalf("after reset+record: %+v", got)
	}
}

func TestRecordIsAllocFree(t *testing.T) {
	r := NewRecorder(1 << 10)
	e := Event{Cycle: 3, Kind: KindDeliver, Node: 7, Src: 2, Block: 1, Tag: 0x42, Val: 9}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(e)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f times per call, want 0", allocs)
	}
}

func TestCountByKindAndFireCounts(t *testing.T) {
	r := NewRecorder(16)
	r.Record(Event{Kind: KindFire, Node: 0})
	r.Record(Event{Kind: KindFire, Node: 2})
	r.Record(Event{Kind: KindFire, Node: 2})
	r.Record(Event{Kind: KindEmit, Node: 1})
	counts := r.CountByKind()
	if counts["fire"] != 3 || counts["emit"] != 1 {
		t.Fatalf("CountByKind: %v", counts)
	}
	fires := FireCounts(r, 3)
	if fires[0] != 1 || fires[1] != 0 || fires[2] != 2 {
		t.Fatalf("FireCounts: %v", fires)
	}
}

func TestKindStrings(t *testing.T) {
	for k := 0; k < numKinds; k++ {
		if s := Kind(k).String(); s == "" || s == "?" {
			t.Fatalf("Kind(%d) has no name", k)
		}
	}
}

func TestFromEventsRoundTrip(t *testing.T) {
	r := NewRecorder(4)
	r.SetMeta(Meta{Program: "p", System: "tyr", Blocks: []string{"root"}})
	for i := 0; i < 7; i++ { // wraps: 3 dropped, 4 retained
		r.Record(Event{Kind: KindFire, Cycle: int64(i), Node: int32(i)})
	}
	got := FromEvents(*r.Meta(), r.Events())
	if got.Len() != r.Len() || got.Dropped() != r.Dropped() || got.Seq() != r.Seq() {
		t.Fatalf("FromEvents: len=%d/%d dropped=%d/%d seq=%d/%d",
			got.Len(), r.Len(), got.Dropped(), r.Dropped(), got.Seq(), r.Seq())
	}
	want, have := r.Events(), got.Events()
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("event %d: %v != %v", i, have[i], want[i])
		}
	}
	if got.Meta().Program != "p" || got.Meta().System != "tyr" {
		t.Fatalf("meta lost: %+v", got.Meta())
	}

	empty := FromEvents(Meta{}, nil)
	if empty.Len() != 0 || empty.Dropped() != 0 {
		t.Fatalf("empty FromEvents: len=%d dropped=%d", empty.Len(), empty.Dropped())
	}
}
