package trace_test

import (
	"testing"

	"repro/internal/harness"
	"repro/internal/trace"
)

// TestProfileAttributionSumsToCycles is the acceptance check for the
// critical-path profiler: the attribution telescopes, so the cycles it
// hands out must sum to the run's cycle count (within 1%; in practice the
// identity is exact because the chain covers every gap up to the last fire).
func TestProfileAttributionSumsToCycles(t *testing.T) {
	for _, tc := range []struct{ app, sys string }{
		{"dmv", harness.SysTyr},
		{"smv", harness.SysTyr},
		{"dmv", harness.SysUnordered},
		{"dmv", harness.SysOrdered},
	} {
		t.Run(tc.app+"/"+tc.sys, func(t *testing.T) {
			rec, cycles := record(t, tc.app, tc.sys)
			p := trace.ComputeProfile(rec)
			if p.Fires == 0 {
				t.Fatal("profile saw no fires")
			}
			diff := p.Total - cycles
			if diff < 0 {
				diff = -diff
			}
			if diff*100 > cycles {
				t.Fatalf("profile total %d vs run cycles %d: off by more than 1%%", p.Total, cycles)
			}
			if p.PathLen <= 0 || p.PathLen > p.Fires {
				t.Fatalf("path length %d out of range (fires %d)", p.PathLen, p.Fires)
			}
			// The per-node attribution must partition the total.
			var sum int64
			for _, np := range p.Nodes {
				sum += np.CritCycles
			}
			if sum != p.Total {
				t.Fatalf("node attribution sums to %d, profile total %d", sum, p.Total)
			}
		})
	}
}

func TestProfileRender(t *testing.T) {
	rec, _ := record(t, "dmv", harness.SysTyr)
	out := trace.ComputeProfile(rec).Render()
	if out == "" {
		t.Fatal("empty render")
	}
}
