package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// ExportChrome writes the recorded stream in the Chrome trace-event JSON
// format, loadable in chrome://tracing and https://ui.perfetto.dev. The
// mapping:
//
//   - one process (pid 1) per run, one thread track per concurrent block
//     (tid = block + 1; tid 1 is the root block);
//   - every fire is a complete ("X") event of duration 1 on its block's
//     track, ts = cycle (the viewer's "µs" are simulated cycles);
//   - tag-pool occupancy is a counter ("C") track per tag space, fed by
//     the tag-alloc/tag-free events' in-use stamps;
//   - parks, wakes, changeTags, and cost-model boundaries are instant
//     ("i") events — parks are the Fig. 11 starvation signal.
//
// Token emit/deliver events are deliberately not exported (they would
// dwarf everything else in the viewer); the critical-path profiler is the
// consumer that uses them.
func ExportChrome(w io.Writer, r *Recorder) error {
	bw := bufio.NewWriter(w)
	meta := r.Meta()

	name := meta.Program
	if name == "" {
		name = "run"
	}
	if meta.System != "" {
		name = meta.System + ": " + name
	}

	first := true
	emit := func(ev chromeEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n  "); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(b)
		return err
	}

	if _, err := bw.WriteString("{\"traceEvents\": [\n  "); err != nil {
		return err
	}
	if err := emit(chromeEvent{Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": name}}); err != nil {
		return err
	}

	// Thread-name metadata for every block that appears in the stream.
	events := r.Events()
	seen := map[int32]bool{}
	for _, e := range events {
		if e.Block >= 0 && !seen[e.Block] {
			seen[e.Block] = true
			if err := emit(chromeEvent{Name: "thread_name", Ph: "M", Pid: 1, Tid: int(e.Block) + 1,
				Args: map[string]any{"name": "block " + meta.BlockName(e.Block)}}); err != nil {
				return err
			}
		}
	}
	if !seen[NoNode] && len(seen) == 0 {
		// Graph-less engines (vN/seqdf): a single track for the stream.
		if err := emit(chromeEvent{Name: "thread_name", Ph: "M", Pid: 1, Tid: 0,
			Args: map[string]any{"name": "engine"}}); err != nil {
			return err
		}
	}

	for _, e := range events {
		tid := int(e.Block) + 1
		if e.Block < 0 {
			tid = 0
		}
		switch e.Kind {
		case KindFire:
			if err := emit(chromeEvent{
				Name: meta.NodeName(e.Node), Cat: "fire", Ph: "X",
				Ts: e.Cycle, Dur: 1, Pid: 1, Tid: tid,
				Args: map[string]any{"node": e.Node, "tag": fmt.Sprintf("%#x", e.Tag)},
			}); err != nil {
				return err
			}
		case KindTagAlloc, KindTagFree:
			if err := emit(chromeEvent{
				Name: "tags in use: " + meta.BlockName(e.Block), Ph: "C",
				Ts: e.Cycle, Pid: 1, Tid: tid,
				Args: map[string]any{"in use": e.Val},
			}); err != nil {
				return err
			}
		case KindPark, KindWake, KindChangeTag, KindBoundary:
			args := map[string]any{"tag": fmt.Sprintf("%#x", e.Tag), "val": e.Val}
			if e.Node >= 0 {
				args["node"] = meta.NodeName(e.Node)
			}
			if err := emit(chromeEvent{
				Name: e.Kind.String(), Ph: "i", S: "t",
				Ts: e.Cycle, Pid: 1, Tid: tid, Args: args,
			}); err != nil {
				return err
			}
		case KindCacheHit, KindCacheMiss, KindWriteback:
			if err := emit(chromeEvent{
				Name: e.Kind.String(), Ph: "i", S: "t",
				Ts: e.Cycle, Pid: 1, Tid: tid,
				Args: map[string]any{"level": e.Port, "addr": e.Val},
			}); err != nil {
				return err
			}
		}
	}

	other := map[string]any{
		"program": meta.Program, "system": meta.System,
		"events": r.Seq(), "dropped": r.Dropped(),
	}
	ob, err := json.Marshal(other)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "\n], \"displayTimeUnit\": \"ms\", \"otherData\": %s}\n", ob); err != nil {
		return err
	}
	return bw.Flush()
}

// chromeEvent is one trace-event record. Field names follow the Chrome
// trace-event format spec.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeInstantKinds is the explicit registry of event kinds the exporter
// renders as instant ("i") events. The validator rejects instant events
// with unregistered names, so adding a kind to the exporter without
// registering it here fails CI's trace check instead of passing silently.
var chromeInstantKinds = map[string]bool{
	KindPark.String():      true,
	KindWake.String():      true,
	KindChangeTag.String(): true,
	KindBoundary.String():  true,
	KindCacheHit.String():  true,
	KindCacheMiss.String(): true,
	KindWriteback.String(): true,
}

// ValidateChromeJSON structurally checks an exported trace: a JSON object
// whose traceEvents array is non-empty, every event carrying a name, a
// known phase, and the phase's required fields — and, for instant events,
// a name from the registered event-kind set (unknown kinds are rejected,
// not silently passed). This is the schema check CI runs against the
// traced-kernel artifact.
func ValidateChromeJSON(data []byte) error {
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("trace: not valid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("trace: traceEvents is missing or empty")
	}
	phases := map[string]bool{}
	for i, ev := range doc.TraceEvents {
		name, ok := ev["name"].(string)
		if !ok || name == "" {
			return fmt.Errorf("trace: event %d has no name", i)
		}
		ph, ok := ev["ph"].(string)
		if !ok {
			return fmt.Errorf("trace: event %d (%q) has no phase", i, name)
		}
		switch ph {
		case "M":
			args, ok := ev["args"].(map[string]any)
			if !ok || args["name"] == nil {
				return fmt.Errorf("trace: metadata event %d (%q) has no args.name", i, name)
			}
		case "X":
			if _, ok := ev["ts"].(float64); !ok {
				return fmt.Errorf("trace: complete event %d (%q) has no ts", i, name)
			}
			if _, ok := ev["dur"].(float64); !ok {
				return fmt.Errorf("trace: complete event %d (%q) has no dur", i, name)
			}
		case "C", "i":
			if _, ok := ev["ts"].(float64); !ok {
				return fmt.Errorf("trace: %s event %d (%q) has no ts", ph, i, name)
			}
			if ph == "i" && !chromeInstantKinds[name] {
				return fmt.Errorf("trace: instant event %d has unknown kind %q", i, name)
			}
		default:
			return fmt.Errorf("trace: event %d (%q) has unknown phase %q", i, name, ph)
		}
		if _, ok := ev["pid"].(float64); !ok {
			return fmt.Errorf("trace: event %d (%q) has no pid", i, name)
		}
		phases[ph] = true
	}
	if !phases["M"] {
		return fmt.Errorf("trace: no metadata (process/thread name) events")
	}
	if !phases["X"] {
		return fmt.Errorf("trace: no fire events")
	}
	return nil
}
