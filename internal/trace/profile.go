package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// The critical-path profiler replays the recorded dependency edges: every
// deliver event links a consumer instance (node, tag) to the firing of the
// producer that sent the latest-arriving operand, and every fire closes an
// instance and becomes a link target itself. Walking back from the last
// fire yields the longest fire chain — the dynamic dependence chain that
// determined execution time — and the cycle gap across each link is
// attributed to the consuming node, so the per-node/block/op attributions
// sum exactly to the run's cycle count when the stream is complete.
//
// Slack is per-fire waiting: the cycles between an instance's last operand
// arrival and its firing (issue contention, or park time for allocates).

// NodeProfile aggregates one static node's profile.
type NodeProfile struct {
	Node       int32
	Name       string
	Block      string
	Op         string
	Fires      int64
	CritFires  int64 // fires of this node on the critical path
	CritCycles int64 // cycles attributed to this node on the critical path
	WaitCycles int64 // total ready-to-fire slack across all fires
}

// GroupProfile aggregates critical-path cycles by block or by opcode.
type GroupProfile struct {
	Name       string
	Fires      int64 // total fires in the group
	CritCycles int64
}

// PathSeg is one run-length segment of the critical path: Fires
// consecutive firings dominated by the same static node.
type PathSeg struct {
	Name   string
	Fires  int64
	Cycles int64
}

// MemLevel tallies one cache level's events from the recorded stream.
type MemLevel struct {
	Level      int16
	Hits       int64
	Misses     int64
	Writebacks int64
}

// MissRate returns misses / (hits + misses) at this level.
func (l MemLevel) MissRate() float64 {
	if l.Hits+l.Misses == 0 {
		return 0
	}
	return float64(l.Misses) / float64(l.Hits+l.Misses)
}

// Profile is the critical-path analysis of one recorded run.
type Profile struct {
	Total   int64 // cycles attributed; equals the run's cycle count when the stream is complete
	Fires   int64 // fire events analyzed
	PathLen int64 // fires on the critical path
	Dropped uint64

	Nodes  []NodeProfile  // sorted by CritCycles descending
	Blocks []GroupProfile // sorted by CritCycles descending
	Ops    []GroupProfile // sorted by CritCycles descending
	Path   []PathSeg      // the critical path, oldest first, run-length compressed

	// MemLevels tallies the memory hierarchy's cache events when the run
	// was recorded with a hierarchy attached (empty otherwise), in level
	// order (L1, L2). The gap a load contributes to the critical path is
	// its miss-chain latency, so these counters explain the mem-op rows
	// of the op table.
	MemLevels []MemLevel
}

type fireRec struct {
	node  int32
	cycle int64
	pred  int   // index of the producer fire of the latest-arriving operand, or -1
	ready int64 // cycle the last operand arrived (== cycle when unknown)
}

type arrKey struct {
	node int32
	tag  uint64
}

type arrival struct {
	cycle int64
	pred  int
}

// ComputeProfile replays the recorded stream and returns the critical-path
// profile. Works on any engine's stream; graph-less engines (vN, seqdf)
// produce a single-node profile.
func ComputeProfile(r *Recorder) *Profile {
	meta := r.Meta()
	p := &Profile{Dropped: r.Dropped()}

	var fires []fireRec
	lastFire := map[int32]int{}
	pend := map[arrKey]arrival{}
	memLevels := map[int16]*MemLevel{}
	memLevel := func(lv int16) *MemLevel {
		ml := memLevels[lv]
		if ml == nil {
			ml = &MemLevel{Level: lv}
			memLevels[lv] = ml
		}
		return ml
	}
	for _, e := range r.Events() {
		switch e.Kind {
		case KindCacheHit:
			memLevel(e.Port).Hits++
		case KindCacheMiss:
			memLevel(e.Port).Misses++
		case KindWriteback:
			memLevel(e.Port).Writebacks++
		case KindDeliver, KindJoinArrive:
			k := arrKey{e.Node, e.Tag}
			prod := -1
			if idx, ok := lastFire[e.Src]; ok {
				prod = idx
			}
			if a, ok := pend[k]; !ok || e.Cycle >= a.cycle {
				pend[k] = arrival{cycle: e.Cycle, pred: prod}
			}
		case KindFire:
			k := arrKey{e.Node, e.Tag}
			rec := fireRec{node: e.Node, cycle: e.Cycle, pred: -1, ready: e.Cycle}
			if a, ok := pend[k]; ok {
				rec.pred, rec.ready = a.pred, a.cycle
				delete(pend, k)
			}
			lastFire[e.Node] = len(fires)
			fires = append(fires, rec)
		}
	}
	for _, ml := range memLevels {
		p.MemLevels = append(p.MemLevels, *ml)
	}
	sort.Slice(p.MemLevels, func(i, j int) bool { return p.MemLevels[i].Level < p.MemLevels[j].Level })

	p.Fires = int64(len(fires))
	if len(fires) == 0 {
		return p
	}

	// Per-node aggregation over every fire.
	perNode := map[int32]*NodeProfile{}
	nodeOf := func(id int32) *NodeProfile {
		np := perNode[id]
		if np == nil {
			np = &NodeProfile{Node: id, Name: meta.NodeName(id), Block: "-", Op: "?"}
			if id >= 0 && int(id) < len(meta.Nodes) {
				np.Block = meta.BlockName(meta.Nodes[id].Block)
				np.Op = meta.Nodes[id].Op
			}
			perNode[id] = np
		}
		return np
	}
	for _, f := range fires {
		np := nodeOf(f.node)
		np.Fires++
		if slack := f.cycle - f.ready; slack > 0 {
			np.WaitCycles += slack
		}
	}

	// Walk the chain back from the last fire (ties broken toward the
	// later record, which fired later within the cycle).
	end := 0
	for i, f := range fires {
		if f.cycle >= fires[end].cycle {
			end = i
		}
	}
	var chain []int
	for idx := end; idx >= 0; {
		chain = append(chain, idx)
		idx = fires[idx].pred
	}
	p.PathLen = int64(len(chain))

	// Attribute cycles along the chain: each link's gap belongs to the
	// consumer; the head fire absorbs cycles 0..head (injection to first
	// fire), so the total telescopes to lastFireCycle+1 == Result.Cycles.
	for i, idx := range chain {
		f := fires[idx]
		var gap int64
		if i == len(chain)-1 {
			gap = f.cycle + 1
		} else {
			gap = f.cycle - fires[chain[i+1]].cycle
		}
		np := nodeOf(f.node)
		np.CritFires++
		np.CritCycles += gap
		p.Total += gap
	}

	// Run-length compress the path, oldest link first.
	for i := len(chain) - 1; i >= 0; i-- {
		f := fires[chain[i]]
		name := nodeOf(f.node).Name
		var gap int64
		if i == len(chain)-1 {
			gap = f.cycle + 1
		} else {
			gap = f.cycle - fires[chain[i+1]].cycle
		}
		if n := len(p.Path); n > 0 && p.Path[n-1].Name == name {
			p.Path[n-1].Fires++
			p.Path[n-1].Cycles += gap
		} else {
			p.Path = append(p.Path, PathSeg{Name: name, Fires: 1, Cycles: gap})
		}
	}

	for _, np := range perNode {
		p.Nodes = append(p.Nodes, *np)
	}
	sort.Slice(p.Nodes, func(i, j int) bool {
		if p.Nodes[i].CritCycles != p.Nodes[j].CritCycles {
			return p.Nodes[i].CritCycles > p.Nodes[j].CritCycles
		}
		return p.Nodes[i].Node < p.Nodes[j].Node
	})
	p.Blocks = groupBy(p.Nodes, func(np NodeProfile) string { return np.Block })
	p.Ops = groupBy(p.Nodes, func(np NodeProfile) string { return np.Op })
	return p
}

func groupBy(nodes []NodeProfile, key func(NodeProfile) string) []GroupProfile {
	agg := map[string]*GroupProfile{}
	for _, np := range nodes {
		k := key(np)
		g := agg[k]
		if g == nil {
			g = &GroupProfile{Name: k}
			agg[k] = g
		}
		g.Fires += np.Fires
		g.CritCycles += np.CritCycles
	}
	out := make([]GroupProfile, 0, len(agg))
	for _, g := range agg {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CritCycles != out[j].CritCycles {
			return out[i].CritCycles > out[j].CritCycles
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Render formats the profile as text: the ASCII flamegraph tables (cycles
// attributed to blocks and opcodes), the hottest nodes, and the critical
// path itself. Legend:
//
//	crit cycles  cycles of the run attributed to this row's fires on the
//	             critical path (columns sum to the run's cycle count)
//	crit fires   how many critical-path firings the row contributed
//	wait         total ready-to-fire slack across all of the row's fires
func (p *Profile) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical-path profile: %s cycles over %s fires, path length %s\n",
		metrics.FormatCount(p.Total), metrics.FormatCount(p.Fires), metrics.FormatCount(p.PathLen))
	if p.Dropped > 0 {
		fmt.Fprintf(&b, "WARNING: %d events dropped by ring wrap; attribution is partial\n", p.Dropped)
	}
	if p.Fires == 0 {
		return b.String()
	}

	b.WriteString("\ncycles by block:\n")
	b.WriteString(renderGroups(p.Blocks, p.Total))
	b.WriteString("\ncycles by op:\n")
	b.WriteString(renderGroups(p.Ops, p.Total))

	b.WriteString("\nhottest nodes (by critical-path cycles):\n")
	tb := &metrics.Table{Headers: []string{"node", "block", "op", "fires", "crit fires", "crit cycles", "wait", "share"}}
	for i, np := range p.Nodes {
		if i >= 12 || np.CritCycles == 0 {
			break
		}
		tb.Add(np.Name, np.Block, np.Op,
			metrics.FormatCount(np.Fires), metrics.FormatCount(np.CritFires),
			metrics.FormatCount(np.CritCycles), metrics.FormatCount(np.WaitCycles),
			metrics.Bar(float64(np.CritCycles)/float64(p.Total), 20))
	}
	b.WriteString(tb.String())

	if len(p.MemLevels) > 0 {
		b.WriteString("\nmemory hierarchy (trace-stream tally):\n")
		mt := &metrics.Table{Headers: []string{"level", "hits", "misses", "writebacks", "miss rate"}}
		for _, ml := range p.MemLevels {
			mt.Add(fmt.Sprintf("L%d", ml.Level),
				metrics.FormatCount(ml.Hits), metrics.FormatCount(ml.Misses),
				metrics.FormatCount(ml.Writebacks),
				fmt.Sprintf("%5.1f%% %s", ml.MissRate()*100, metrics.Bar(ml.MissRate(), 20)))
		}
		b.WriteString(mt.String())
	}

	b.WriteString("\ncritical path (oldest first, run-length compressed):\n")
	pt := &metrics.Table{Headers: []string{"segment", "fires", "cycles"}}
	const maxSegs = 24
	for i, seg := range p.Path {
		if i >= maxSegs {
			var restFires, restCycles int64
			for _, s := range p.Path[i:] {
				restFires += s.Fires
				restCycles += s.Cycles
			}
			pt.Add(fmt.Sprintf("... %d more segments", len(p.Path)-i),
				metrics.FormatCount(restFires), metrics.FormatCount(restCycles))
			break
		}
		pt.Add(seg.Name, metrics.FormatCount(seg.Fires), metrics.FormatCount(seg.Cycles))
	}
	b.WriteString(pt.String())
	return b.String()
}

func renderGroups(groups []GroupProfile, total int64) string {
	tb := &metrics.Table{Headers: []string{"group", "fires", "crit cycles", "share"}}
	for _, g := range groups {
		frac := 0.0
		if total > 0 {
			frac = float64(g.CritCycles) / float64(total)
		}
		tb.Add(g.Name, metrics.FormatCount(g.Fires), metrics.FormatCount(g.CritCycles),
			fmt.Sprintf("%5.1f%% %s", frac*100, metrics.Bar(frac, 20)))
	}
	return tb.String()
}
