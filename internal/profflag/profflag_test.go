package profflag

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestNoFlagsIsNoop(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	p := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	p := Register(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s: empty profile", path)
		}
	}
}
