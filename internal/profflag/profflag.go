// Package profflag wires runtime/pprof profiling into a command's flag
// set: -cpuprofile writes a CPU profile over the whole run, -memprofile
// writes a heap profile at exit (after a final GC, so it shows live
// steady-state memory rather than collectable garbage). Both outputs are
// read with `go tool pprof`.
package profflag

import (
	"flag"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiler carries the registered flag values. Register it before flag
// parsing, Start after, and Stop on the way out.
type Profiler struct {
	cpu *string
	mem *string
	f   *os.File
}

// Register adds -cpuprofile and -memprofile to fs.
func Register(fs *flag.FlagSet) *Profiler {
	return &Profiler{
		cpu: fs.String("cpuprofile", "", "write a CPU profile to this path (inspect with go tool pprof)"),
		mem: fs.String("memprofile", "", "write a heap profile to this path at exit"),
	}
}

// Start begins CPU profiling when -cpuprofile was given.
func (p *Profiler) Start() error {
	if *p.cpu == "" {
		return nil
	}
	f, err := os.Create(*p.cpu)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	p.f = f
	return nil
}

// Stop ends CPU profiling and writes the heap profile, as requested. It
// is safe to call when neither flag was given.
func (p *Profiler) Stop() error {
	var first error
	if p.f != nil {
		pprof.StopCPUProfile()
		if err := p.f.Close(); err != nil {
			first = err
		}
		p.f = nil
	}
	if *p.mem != "" {
		f, err := os.Create(*p.mem)
		if err != nil {
			if first == nil {
				first = err
			}
			return first
		}
		runtime.GC() // drop collectable garbage so the profile shows live memory
		if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
			first = err
		}
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
