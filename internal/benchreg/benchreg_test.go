package benchreg

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func doc(scale string, systems ...System) *Doc {
	return &Doc{Schema: Schema, Scale: scale, Systems: systems}
}

func sys(name string, wallNS int64, cycles float64) System {
	return System{System: name, WallNS: wallNS, GmeanCycles: cycles}
}

func TestComparePass(t *testing.T) {
	old := doc("small", sys("a", 100e6, 500), sys("b", 200e6, 900))
	nw := doc("small", sys("a", 50e6, 500), sys("b", 210e6, 900))
	rep, err := Compare(old, nw, 1.15)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass() {
		t.Fatalf("expected pass, got regressions %v", rep.Regressions)
	}
	if len(rep.CycleChanges) != 0 {
		t.Fatalf("unexpected cycle changes %v", rep.CycleChanges)
	}
	// gmean of 0.5 and 1.05
	want := math.Sqrt(0.5 * 1.05)
	if math.Abs(rep.GmeanWallRatio-want) > 1e-9 {
		t.Fatalf("gmean ratio = %v, want %v", rep.GmeanWallRatio, want)
	}
}

func TestCompareWallRegression(t *testing.T) {
	old := doc("small", sys("a", 100e6, 500))
	nw := doc("small", sys("a", 120e6, 500))
	rep, err := Compare(old, nw, 1.15)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass() {
		t.Fatal("expected a wall-clock regression at 1.20x vs tolerance 1.15x")
	}
	// The same delta passes under a looser gate.
	rep, err = Compare(old, nw, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass() {
		t.Fatalf("expected pass at tolerance 1.25, got %v", rep.Regressions)
	}
}

func TestCompareCycleDriftIsInformational(t *testing.T) {
	old := doc("small", sys("a", 100e6, 500))
	nw := doc("small", sys("a", 90e6, 501))
	rep, err := Compare(old, nw, 1.15)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass() {
		t.Fatalf("cycle drift must not fail the gate: %v", rep.Regressions)
	}
	if len(rep.CycleChanges) != 1 || !rep.Deltas[0].CycleDrift {
		t.Fatalf("cycle drift not reported: %+v", rep)
	}
}

func TestCompareMissingSystem(t *testing.T) {
	old := doc("small", sys("a", 100e6, 500), sys("b", 100e6, 500))
	nw := doc("small", sys("a", 100e6, 500), sys("c", 100e6, 500))
	rep, err := Compare(old, nw, 1.15)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass() {
		t.Fatal("dropping a baseline system must regress")
	}
	if len(rep.Deltas) != 1 {
		t.Fatalf("new-only systems should be ignored, deltas = %+v", rep.Deltas)
	}
}

func TestCompareScaleMismatch(t *testing.T) {
	if _, err := Compare(doc("small", sys("a", 1, 1)), doc("large", sys("a", 1, 1)), 1.15); err == nil {
		t.Fatal("comparing different scales must error")
	}
	if _, err := Compare(doc("small", sys("a", 1, 1)), doc("small", sys("a", 1, 1)), 0); err == nil {
		t.Fatal("non-positive tolerance must error")
	}
}

func TestLoadRoundTrip(t *testing.T) {
	d := doc("small", sys("a", 100e6, 500))
	d.Note = "GOMAXPROCS=8; shard sweep -shards 1,2,4,8"
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Systems[0] != d.Systems[0] || got.Scale != d.Scale || got.Note != d.Note {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestLoadRejectsBadDocs(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"schema.json": `{"schema":"other/v1","scale":"small","systems":[{"system":"a"}]}`,
		"empty.json":  `{"schema":"tyr-bench/v1","scale":"small","systems":[]}`,
		"junk.json":   `not json`,
	}
	for name, body := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); err == nil {
			t.Errorf("%s: expected load error", name)
		}
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file: expected error")
	}
}

// TestLoadCommittedBaseline keeps the repo's committed benchmark artifact
// parseable by the comparator: if the schema evolves, the baseline must be
// regenerated in the same change.
func TestLoadCommittedBaseline(t *testing.T) {
	for _, name := range []string{"BENCH_pr3.json", "BENCH_pr4.json"} {
		path := filepath.Join("..", "..", name)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			continue
		}
		if _, err := Load(path); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
