// Package benchreg defines the committed benchmark summary schema
// (tyr-bench/v1, the BENCH_*.json series written by `tyrexp bench`) and a
// regression comparator over it. The comparator is the CI gate behind
// `tyrexp benchdiff old.json new.json`: per-system wall-clock may not
// grow past a tolerance factor, and simulated cycle counts are surfaced
// whenever they move at all — a cycles change is a semantics change, not
// a performance change, and must be intentional.
package benchreg

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/metrics"
)

// Schema is the current benchmark summary schema identifier.
const Schema = "tyr-bench/v1"

// Doc is one benchmark summary file.
type Doc struct {
	Schema string `json:"schema"`
	Scale  string `json:"scale"`
	// Note records host conditions the numbers depend on — GOMAXPROCS and
	// the shard sweep, chiefly — so a wall-clock comparison across files
	// can be judged. It never enters the comparison itself.
	Note    string   `json:"note,omitempty"`
	Systems []System `json:"systems"`
	// Runs carries the full per-run telemetry behind the summary.
	Runs []metrics.RunStats `json:"runs,omitempty"`
}

// System is one simulated machine's aggregate over the kernel suite.
type System struct {
	System      string  `json:"system"`
	GmeanCycles float64 `json:"gmean_cycles"`
	WallNS      int64   `json:"wall_ns"` // summed across kernels
	// Cache behavior, measured by a passthrough hierarchy (zero timing
	// impact, so gmean_cycles stays comparable across benchmark files):
	// aggregate miss rates across kernels and the mean of per-run AMATs.
	L1MissRate float64 `json:"l1_miss_rate"`
	L2MissRate float64 `json:"l2_miss_rate"`
	MeanAMAT   float64 `json:"mean_amat"`
	// ReqPerSec is simulation throughput in requests per second (runs
	// divided by summed wall-clock), the headline number for the batched
	// sys@bN entries of `tyrexp bench -batch`. Host-dependent like WallNS;
	// never part of the cycle-identity comparison.
	ReqPerSec float64 `json:"req_per_sec,omitempty"`
}

// Load reads and validates a benchmark summary file.
func Load(path string) (*Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Doc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if !strings.HasPrefix(d.Schema, "tyr-bench/") {
		return nil, fmt.Errorf("%s: schema %q is not a tyr-bench document", path, d.Schema)
	}
	if len(d.Systems) == 0 {
		return nil, fmt.Errorf("%s: no systems in summary", path)
	}
	return &d, nil
}

// Summarize aggregates per-run telemetry into a tyr-bench/v1 document:
// per-system gmean simulated cycles, summed wall-clock, and aggregate cache
// behavior (when runs carry cache counters). systems fixes the summary
// order; systems with no runs are omitted.
func Summarize(scale string, systems []string, runs []metrics.RunStats) *Doc {
	doc := &Doc{Schema: Schema, Scale: scale, Runs: runs}
	perSys := map[string][]float64{}
	wall := map[string]int64{}
	type cacheAgg struct {
		l1Acc, l1Miss, l2Acc, l2Miss int64
		amatSum                      float64
		n                            int
	}
	agg := map[string]*cacheAgg{}
	for _, rs := range runs {
		perSys[rs.System] = append(perSys[rs.System], float64(rs.Cycles))
		wall[rs.System] += rs.WallNS
		if rs.Cache != nil {
			a := agg[rs.System]
			if a == nil {
				a = &cacheAgg{}
				agg[rs.System] = a
			}
			a.l1Acc += rs.Cache.L1.Accesses
			a.l1Miss += rs.Cache.L1.Misses
			a.l2Acc += rs.Cache.L2.Accesses
			a.l2Miss += rs.Cache.L2.Misses
			a.amatSum += rs.Cache.AMAT
			a.n++
		}
	}
	for _, sys := range systems {
		if len(perSys[sys]) == 0 {
			continue
		}
		bs := System{System: sys, GmeanCycles: metrics.Gmean(perSys[sys]), WallNS: wall[sys]}
		if wall[sys] > 0 {
			bs.ReqPerSec = float64(len(perSys[sys])) / (float64(wall[sys]) / 1e9)
		}
		if a := agg[sys]; a != nil && a.l1Acc > 0 {
			bs.L1MissRate = float64(a.l1Miss) / float64(a.l1Acc)
			bs.MeanAMAT = a.amatSum / float64(a.n)
			if a.l2Acc > 0 {
				bs.L2MissRate = float64(a.l2Miss) / float64(a.l2Acc)
			}
		}
		doc.Systems = append(doc.Systems, bs)
	}
	return doc
}

// Delta is one system's old-vs-new comparison.
type Delta struct {
	System     string
	OldWallNS  int64
	NewWallNS  int64
	WallRatio  float64 // new/old; < 1 is a speedup
	OldCycles  float64
	NewCycles  float64
	CycleDrift bool // simulated cycles moved (semantic change)
}

// Report is the outcome of a comparison.
type Report struct {
	Deltas []Delta
	// GmeanWallRatio is the geometric-mean new/old wall ratio across
	// systems present in both documents.
	GmeanWallRatio float64
	// Regressions lists every tolerance violation (empty = pass).
	Regressions []string
	// CycleChanges lists systems whose simulated cycles moved —
	// informational, since a PR may change modeling intentionally, but
	// never silently acceptable in a perf-only change.
	CycleChanges []string
}

// Pass reports whether the comparison met the tolerance.
func (r *Report) Pass() bool { return len(r.Regressions) == 0 }

// Compare evaluates a new benchmark summary against an old baseline. A
// system regresses when its wall-clock grows by more than the tolerance
// factor (e.g. 1.15 = +15%). Systems missing from the new document are
// regressions; new systems are ignored (they have no baseline).
func Compare(oldDoc, newDoc *Doc, tolerance float64) (*Report, error) {
	if tolerance <= 0 {
		return nil, fmt.Errorf("benchreg: tolerance must be positive (got %g)", tolerance)
	}
	if oldDoc.Scale != newDoc.Scale {
		return nil, fmt.Errorf("benchreg: scale mismatch: baseline %q vs new %q", oldDoc.Scale, newDoc.Scale)
	}
	newBy := make(map[string]System, len(newDoc.Systems))
	for _, s := range newDoc.Systems {
		newBy[s.System] = s
	}
	rep := &Report{}
	logSum, n := 0.0, 0
	for _, o := range oldDoc.Systems {
		nw, ok := newBy[o.System]
		if !ok {
			rep.Regressions = append(rep.Regressions,
				fmt.Sprintf("%s: present in baseline but missing from new summary", o.System))
			continue
		}
		d := Delta{
			System:    o.System,
			OldWallNS: o.WallNS,
			NewWallNS: nw.WallNS,
			OldCycles: o.GmeanCycles,
			NewCycles: nw.GmeanCycles,
		}
		if o.WallNS > 0 {
			d.WallRatio = float64(nw.WallNS) / float64(o.WallNS)
			logSum += math.Log(d.WallRatio)
			n++
		}
		if o.GmeanCycles != nw.GmeanCycles {
			d.CycleDrift = true
			rep.CycleChanges = append(rep.CycleChanges,
				fmt.Sprintf("%s: gmean cycles %.1f -> %.1f", o.System, o.GmeanCycles, nw.GmeanCycles))
		}
		if d.WallRatio > tolerance {
			rep.Regressions = append(rep.Regressions,
				fmt.Sprintf("%s: wall-clock %.1fms -> %.1fms (%.2fx > tolerance %.2fx)",
					o.System, float64(o.WallNS)/1e6, float64(nw.WallNS)/1e6, d.WallRatio, tolerance))
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	if n > 0 {
		rep.GmeanWallRatio = math.Exp(logSum / float64(n))
	}
	return rep, nil
}
