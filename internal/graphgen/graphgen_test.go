package graphgen

import (
	"testing"

	"repro/internal/sparse"
)

func TestWattsStrogatzLattice(t *testing.T) {
	// beta=0: pure ring lattice, every node has degree k, and the number
	// of triangles is exactly n*k/2*(k/2-1)/2 for k < 2n/3... use the
	// known closed form for triangles in a ring lattice: n * k/2 * (k-2)/4
	// rounded — instead verify via reference against a brute-force count.
	g := WattsStrogatz(24, 4, 0, 1)
	for i := 0; i < g.Rows; i++ {
		deg := g.RowPtr[i+1] - g.RowPtr[i]
		if deg != 4 {
			t.Fatalf("node %d degree %d, want 4", i, deg)
		}
	}
	want := bruteForceTriangles(g)
	if got := TriangleCount(g); got != want {
		t.Errorf("TriangleCount = %d, brute force %d", got, want)
	}
	if want == 0 {
		t.Error("ring lattice with k=4 must contain triangles")
	}
}

func TestWattsStrogatzSymmetricNoSelfLoops(t *testing.T) {
	g := WattsStrogatz(100, 6, 0.3, 42)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	dense := g.ToDense()
	n := g.Rows
	for i := 0; i < n; i++ {
		if dense[i*n+i] != 0 {
			t.Fatalf("self loop at %d", i)
		}
		for j := 0; j < n; j++ {
			if dense[i*n+j] != dense[j*n+i] {
				t.Fatalf("asymmetric edge (%d,%d)", i, j)
			}
		}
	}
}

func TestWattsStrogatzRewiringChangesGraph(t *testing.T) {
	a := WattsStrogatz(60, 4, 0, 7)
	b := WattsStrogatz(60, 4, 0.5, 7)
	if a.NNZ() == 0 || b.NNZ() == 0 {
		t.Fatal("empty graphs")
	}
	same := true
	if a.NNZ() != b.NNZ() {
		same = false
	} else {
		for i := range a.Col {
			if a.Col[i] != b.Col[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("rewiring produced an identical graph")
	}
}

func TestTriangleCountMatchesBruteForce(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := WattsStrogatz(48, 6, 0.2, seed)
		want := bruteForceTriangles(g)
		if got := TriangleCount(g); got != want {
			t.Errorf("seed %d: TriangleCount = %d, brute force %d", seed, got, want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := WattsStrogatz(80, 6, 0.25, 9)
	b := WattsStrogatz(80, 6, 0.25, 9)
	if a.NNZ() != b.NNZ() {
		t.Fatal("same seed produced different graphs")
	}
	for i := range a.Col {
		if a.Col[i] != b.Col[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
}

func TestNumEdgesAndDegrees(t *testing.T) {
	g := WattsStrogatz(50, 4, 0, 3)
	if NumEdges(g) != 100 { // n*k/2
		t.Errorf("edges = %d, want 100", NumEdges(g))
	}
	degs := Degrees(g)
	if len(degs) != 50 || degs[0] != 4 || degs[49] != 4 {
		t.Errorf("degrees = %v", degs[:5])
	}
}

func bruteForceTriangles(g *sparse.CSR) int64 {
	n := g.Rows
	dense := g.ToDense()
	var count int64
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if dense[u*n+v] == 0 {
				continue
			}
			for w := v + 1; w < n; w++ {
				if dense[u*n+w] != 0 && dense[v*n+w] != 0 {
					count++
				}
			}
		}
	}
	return count
}
