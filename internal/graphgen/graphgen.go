// Package graphgen generates the graph inputs for the triangle-counting
// workload. The paper runs tc on a navigable small-world graph [Watts &
// Strogatz 1998]; this package implements the Watts–Strogatz construction
// directly (ring lattice of degree k with probability-beta rewiring) and a
// native triangle-count reference used as the validation oracle.
package graphgen

import (
	"math/rand"
	"sort"

	"repro/internal/sparse"
)

// WattsStrogatz builds an undirected small-world graph with n nodes, even
// lattice degree k, and rewiring probability beta (in [0,1]), returned as a
// symmetric 0/1 adjacency matrix in CSR form with sorted neighbor lists.
func WattsStrogatz(n, k int, beta float64, seed int64) *sparse.CSR {
	if k >= n {
		k = n - 1
	}
	if k%2 == 1 {
		k--
	}
	rng := rand.New(rand.NewSource(seed))
	adj := make([]map[int64]int64, n)
	for i := range adj {
		adj[i] = make(map[int64]int64)
	}
	addEdge := func(u, v int) {
		if u == v {
			return
		}
		adj[u][int64(v)] = 1
		adj[v][int64(u)] = 1
	}
	hasEdge := func(u, v int) bool {
		_, ok := adj[u][int64(v)]
		return ok
	}
	// Ring lattice: node i connects to its k/2 nearest neighbors each way.
	for i := 0; i < n; i++ {
		for d := 1; d <= k/2; d++ {
			addEdge(i, (i+d)%n)
		}
	}
	// Rewire each lattice edge (i, i+d) with probability beta.
	for i := 0; i < n; i++ {
		for d := 1; d <= k/2; d++ {
			if rng.Float64() >= beta {
				continue
			}
			j := (i + d) % n
			if !hasEdge(i, j) {
				continue // already rewired away by the peer direction
			}
			// Pick a new target avoiding self-loops and duplicates.
			t := rng.Intn(n)
			tries := 0
			for (t == i || hasEdge(i, t)) && tries < 16 {
				t = rng.Intn(n)
				tries++
			}
			if t == i || hasEdge(i, t) {
				continue
			}
			delete(adj[i], int64(j))
			delete(adj[j], int64(i))
			addEdge(i, t)
		}
	}
	return sparse.FromRows(n, n, adj)
}

// NumEdges counts undirected edges of a symmetric adjacency matrix.
func NumEdges(g *sparse.CSR) int { return g.NNZ() / 2 }

// TriangleCount counts triangles (each once) using the ordered
// neighbor-intersection algorithm: for every edge (u,v) with u < v,
// count common neighbors w with w > v. This is also exactly the algorithm
// the tc workload runs on the simulated machines.
func TriangleCount(g *sparse.CSR) int64 {
	var count int64
	for u := 0; u < g.Rows; u++ {
		for p := g.RowPtr[u]; p < g.RowPtr[u+1]; p++ {
			v := g.Col[p]
			if v <= int64(u) {
				continue
			}
			count += intersectAbove(g, int64(u), v, v)
		}
	}
	return count
}

// intersectAbove counts common neighbors of u and v strictly greater than
// floor, by merge-joining the sorted adjacency lists.
func intersectAbove(g *sparse.CSR, u, v, floor int64) int64 {
	p, q := g.RowPtr[u], g.RowPtr[v]
	var n int64
	for p < g.RowPtr[u+1] && q < g.RowPtr[v+1] {
		a, b := g.Col[p], g.Col[q]
		switch {
		case a < b:
			p++
		case a > b:
			q++
		default:
			if a > floor {
				n++
			}
			p++
			q++
		}
	}
	return n
}

// Degrees returns the sorted degree sequence (for tests and reporting).
func Degrees(g *sparse.CSR) []int {
	out := make([]int, g.Rows)
	for i := 0; i < g.Rows; i++ {
		out[i] = int(g.RowPtr[i+1] - g.RowPtr[i])
	}
	sort.Ints(out)
	return out
}
