// Deadlock demonstration (the paper's Fig. 11 and Sec. V): bounding a
// single *global* tag space deadlocks — the machine eagerly hands all tags
// to outer-loop work that then waits on inner loops which can no longer
// get a tag — while TYR's *local* tag spaces complete the same program
// with just two tags per concurrent block.
//
//	go run ./examples/deadlock
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/compile"
	"repro/internal/core"
)

func main() {
	app := apps.Dmv(64, 64, 3)
	fmt.Printf("workload: %s — %s\n\n", app.Name, app.Description)

	g, err := compile.Tagged(app.Prog, compile.Options{EntryArgs: app.Args})
	if err != nil {
		log.Fatal(err)
	}

	// Naive unordered dataflow with a bounded global tag pool.
	for _, tags := range []int{4, 8, 16} {
		res, err := core.Run(g, app.NewImage(), core.Config{
			Policy:     core.PolicyGlobalBounded,
			GlobalTags: tags,
		})
		if err != nil {
			log.Fatal(err)
		}
		if res.Deadlocked {
			fmt.Printf("unordered, %3d global tags: DEADLOCK at cycle %d — %d tokens stuck, %d allocates starved\n",
				tags, res.Deadlock.Cycle, res.Deadlock.LiveTokens, len(res.Deadlock.PendingAllocs))
			for _, sp := range res.Deadlock.Spaces {
				fmt.Printf("    starved %s block %q: %d allocate(s) waiting, %d of %d pool tags in use\n",
					sp.Kind, sp.Block, sp.Starved, sp.InUse, sp.Tags)
			}
			for i, pa := range res.Deadlock.PendingAllocs {
				if i >= 3 {
					fmt.Printf("    ... and %d more\n", len(res.Deadlock.PendingAllocs)-3)
					break
				}
				fmt.Printf("    starved: %s (wants a tag for block %q)\n", pa.Label, pa.Space)
			}
		} else {
			fmt.Printf("unordered, %3d global tags: completed in %d cycles\n", tags, res.Cycles)
		}
	}

	// The same graph under TYR's local tag spaces: allocate's readiness
	// protocol and the tail-recursion reserve guarantee forward progress
	// with two tags per block (Theorem 1).
	fmt.Println()
	for _, tags := range []int{2, 4} {
		res, err := core.Run(g, app.NewImage(), core.Config{
			Policy:          core.PolicyTyr,
			TagsPerBlock:    tags,
			CheckInvariants: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		status := "completed"
		if !res.Completed {
			status = "FAILED"
		}
		fmt.Printf("TYR, %d tags per local tag space: %s in %d cycles (peak %d live tokens)\n",
			tags, status, res.Cycles, res.PeakLive)
	}

	// How many tags would naive unordered need? Ask the unlimited run.
	res, err := core.Run(g, app.NewImage(), core.Config{Policy: core.PolicyGlobalUnlimited})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n(for reference, unlimited unordered dataflow held up to %d contexts at once —\n"+
		" the global pool would need that many tags, and the requirement grows with input size)\n",
		res.PeakTags)
}
