// Recursion under bounded tags (the paper's Sec. V and VIII-B): general
// recursion is inherently unbounded, so TYR's Theorem 1 assumes it has
// been transformed into tail recursion with an explicitly managed stack.
// This example runs fib(n) as a stack-driven worklist and shows the
// payoff: the logical call tree grows exponentially with n, yet the
// number of live *tokens* stays flat — the unbounded state lives in
// memory, where it belongs.
//
//	go run ./examples/recursion
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/metrics"
)

func main() {
	fmt.Println("fib(n) via explicit work stack, on TYR with 4 tags per block:")
	fmt.Println()
	tb := &metrics.Table{Headers: []string{
		"n", "result", "call-tree leaves", "cycles", "peak live tokens",
	}}
	for _, n := range []int{6, 10, 14, 18} {
		app := apps.FibStack(n)
		g, err := compile.Tagged(app.Prog, compile.Options{EntryArgs: app.Args})
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Run(g, app.NewImage(), core.Config{
			Policy:          core.PolicyTyr,
			TagsPerBlock:    4,
			CheckInvariants: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Completed {
			log.Fatalf("n=%d deadlocked: %v", n, res.Deadlock)
		}
		if err := app.Check(nil, res.ResultValue); err != nil {
			log.Fatalf("n=%d: %v", n, err)
		}
		tb.Add(fmt.Sprint(n), fmt.Sprint(res.ResultValue),
			fmt.Sprint(res.ResultValue), // one leaf per unit of fib(n)
			metrics.FormatCount(res.Cycles),
			metrics.FormatCount(res.PeakLive))
	}
	fmt.Print(tb.String())
	fmt.Println("\nWork grows exponentially (leaves = fib(n)) while peak live tokens stay")
	fmt.Println("flat: Theorem 2's bound holds because the recursion's state was moved")
	fmt.Println("into the explicitly managed stack region.")
}
