// Sparse workload tour: run sparse matrix-vector multiplication (the
// paper's smv, on a synthetic banded FEM-style matrix) across all five
// simulated architectures and compare parallelism and live state —
// a miniature of the paper's Figs. 12–14.
//
//	go run ./examples/sparse
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/harness"
	"repro/internal/metrics"
)

func main() {
	// A 256x256 banded sparse matrix, ~6 non-zeros per row.
	app := apps.Smv(256, 6, 6, 42)
	fmt.Printf("workload: %s — %s\n\n", app.Name, app.Description)

	tb := &metrics.Table{Headers: []string{
		"system", "cycles", "dyn instrs", "mean IPC", "peak live", "mean live",
	}}
	var tyr, unordered metrics.RunStats
	for _, sys := range harness.Systems {
		rs, err := harness.Run(app, sys, harness.SysConfig{IssueWidth: 128, Tags: 64})
		if err != nil {
			log.Fatalf("%s: %v", sys, err)
		}
		tb.Add(sys,
			metrics.FormatCount(rs.Cycles),
			metrics.FormatCount(rs.Fired),
			fmt.Sprintf("%.1f", rs.IPC()),
			metrics.FormatCount(rs.PeakLive),
			fmt.Sprintf("%.1f", rs.MeanLive))
		switch sys {
		case harness.SysTyr:
			tyr = rs
		case harness.SysUnordered:
			unordered = rs
		}
	}
	fmt.Print(tb.String())
	fmt.Println("\n(every row's outputs were validated against the native SpMV reference)")

	fmt.Printf("\nTYR vs unordered dataflow: %.2fx the execution time with %.1fx less peak state\n",
		float64(tyr.Cycles)/float64(unordered.Cycles),
		float64(unordered.PeakLive)/float64(tyr.PeakLive))
}
