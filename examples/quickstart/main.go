// Quickstart: write a small program in the structured IR, compile it to a
// tagged dataflow graph, and execute it on the TYR machine.
//
//	go run ./examples/quickstart
//
// The program sums the squares of 0..n-1 with a loop — which the compiler
// turns into a concurrent block with its own local tag space — and stores
// the running values to memory. The run validates against the reference
// interpreter and prints the machine's parallelism/state metrics.
package main

import (
	"fmt"
	"log"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/prog"
)

func main() {
	const n = 100

	// sumsq(n): for i in [0,n): out[i] = i*i; acc += i*i; return acc
	p := prog.NewProgram("sumsq", "main")
	p.DeclareMem("out", n)
	p.AddFunc("main", []string{"n"}, prog.V("acc"),
		prog.ForRange("sumsq.loop", "i", prog.C(0), prog.V("n"),
			[]prog.LoopVar{prog.LV("acc", prog.C(0))},
			prog.LetS("sq", prog.Mul(prog.V("i"), prog.V("i"))),
			prog.St("out", prog.V("i"), prog.V("sq")),
			prog.Set("acc", prog.Add(prog.V("acc"), prog.V("sq"))),
		),
	)
	if err := prog.Check(p); err != nil {
		log.Fatalf("program is invalid: %v", err)
	}

	// Reference semantics first: the interpreter is the oracle.
	refImage := prog.DefaultImage(p)
	ref, err := prog.Run(p, refImage, prog.RunConfig{Args: []int64{n}})
	if err != nil {
		log.Fatalf("reference run: %v", err)
	}
	fmt.Printf("reference result: %d (%d dynamic instructions)\n\n", ref.Ret, ref.Stats.DynInstrs)

	// Compile to the tagged dataflow graph TYR executes.
	g, err := compile.Tagged(p, compile.Options{EntryArgs: []int64{n}})
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	st := g.ComputeStats()
	fmt.Printf("compiled graph: %d instructions in %d concurrent blocks (%d tag-management ops)\n\n",
		st.Nodes, st.Blocks, st.TagOps)

	// Execute on TYR with a handful of tags per local tag space.
	for _, tags := range []int{2, 8, 64} {
		im := prog.DefaultImage(p)
		res, err := core.Run(g, im, core.Config{
			Policy:          core.PolicyTyr,
			TagsPerBlock:    tags,
			IssueWidth:      128,
			CheckInvariants: true,
		})
		if err != nil {
			log.Fatalf("tyr run (tags=%d): %v", tags, err)
		}
		if !res.Completed || res.ResultValue != ref.Ret {
			log.Fatalf("tags=%d: wrong result %d (completed=%v), want %d",
				tags, res.ResultValue, res.Completed, ref.Ret)
		}
		if !im.Equal(refImage) {
			log.Fatalf("tags=%d: memory differs from reference", tags)
		}
		fmt.Printf("TYR %2d tags/block: %5d cycles, IPC %5.1f, peak live tokens %4d  (result %d, validated)\n",
			tags, res.Cycles, res.IPC(), res.PeakLive, res.ResultValue)
	}

	fmt.Println("\nMore tags per block buy parallelism at the cost of live state —")
	fmt.Println("the paper's central tradeoff, safe at any setting >= 2 (Theorems 1 & 2).")
}
