// Per-region tag tuning (the paper's Fig. 18 and Sec. IV-D): local tag
// spaces give each program region its own parallelism knob. Restricting
// the outer loop of dense matrix-matrix multiplication to a few tags
// trims surplus outer-loop parallelism — reducing peak live state with
// almost no slowdown — while the hot inner loop keeps its full budget.
//
//	go run ./examples/tagtuning
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/compile"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/tuner"
)

func main() {
	app := apps.Dmm(36, 7)
	fmt.Printf("workload: %s — %s\n", app.Name, app.Description)
	fmt.Printf("blocks: outer loop %q, hot inner loop %q\n\n", app.Outer, app.Inner)

	type config struct {
		name      string
		blockTags map[string]int
	}
	configs := []config{
		{"uniform 64 tags/block", nil},
		{"outer loop capped at 8", map[string]int{app.Outer: 8}},
		{"outer loop capped at 4", map[string]int{app.Outer: 4}},
		{"outer 4, middle 8", map[string]int{app.Outer: 4, "dmm.j": 8}},
	}

	tb := &metrics.Table{Headers: []string{"config", "cycles", "peak live", "mean live", "peak vs baseline"}}
	var base metrics.RunStats
	var series []metrics.Series
	for i, c := range configs {
		rs, err := harness.Run(app, harness.SysTyr, harness.SysConfig{
			IssueWidth: 128, Tags: 64, BlockTags: c.blockTags, TracePoints: 512,
		})
		if err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
		if i == 0 {
			base = rs
		}
		tb.Add(c.name,
			metrics.FormatCount(rs.Cycles),
			metrics.FormatCount(rs.PeakLive),
			fmt.Sprintf("%.0f", rs.MeanLive),
			fmt.Sprintf("%.1f%%", 100*float64(rs.PeakLive)/float64(base.PeakLive)))
		series = append(series, metrics.Series{
			Name:   fmt.Sprintf("%c: %s", 'a'+i, c.name),
			Points: rs.Trace,
		})
	}
	fmt.Print(tb.String())
	fmt.Println()
	fmt.Print(metrics.RenderTraces("live state over time per config", series, 76, 14))
	fmt.Println("\nAll four configurations produce identical, validated outputs;")
	fmt.Println("only where parallelism is spent changes.")

	// Sec. VII-E suggests runtime systems could search these budgets
	// automatically; internal/tuner implements that search.
	fmt.Println("\n--- automatic search (internal/tuner) ---")
	g, err := compile.Tagged(app.Prog, compile.Options{EntryArgs: app.Args})
	if err != nil {
		log.Fatal(err)
	}
	tres, err := tuner.Tune(g, app.NewImage, tuner.Options{MaxSlowdown: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	for _, step := range tres.Steps {
		fmt.Printf("  accepted: %-10s %3d -> %3d tags   (peak %s, %s cycles)\n",
			step.Block, step.From, step.To,
			metrics.FormatCount(step.PeakLive), metrics.FormatCount(step.Cycles))
	}
	fmt.Printf("tuned budgets %v: peak state -%.1f%% at %+.1f%% cycles (%d trial simulations)\n",
		tres.BlockTags, tres.PeakReduction()*100, tres.Slowdown()*100, tres.Trials)
}
